/* Adler-32 as a two-process pipeline: a byte producer and a mod-sum
   consumer meeting on a rendezvous channel.  Accepted exactly by the
   par-capable dialects; must agree with the sequential adler32 kernel:

     chlsc compare examples/adler32_par.c -e run --args 1   # 1054869625 */

chan int c;

int run(int seed) {
  int a = 1;
  int b = 0;
  par {
    {
      for (int i = 0; i < 16; i = i + 1) {
        send(c, (seed * (i + 1) * 31) & 255);
      }
    }
    {
      for (int i = 0; i < 16; i = i + 1) {
        int byte = recv(c);
        a = (a + byte) % 65521;
        b = (b + a) % 65521;
      }
    }
  }
  return b * 65536 + a;
}
