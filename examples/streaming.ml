(* Streaming process network in Handel-C: the paper's Concurrency section
   made executable.  A three-stage pipeline communicates over rendezvous
   channels:

        source ──c1──▶ moving-average ──c2──▶ threshold/count

   "About half the languages require the programmer to express concurrency
   with parallel constructs … Handel-C, and SpecC can also group
   concurrent statements" — this is what that style of design looks like,
   and what the cycle-accurate semantics charges for it.

   Run with:  dune exec examples/streaming.exe *)

let source n =
  Printf.sprintf
    {|
    chan int c1;
    chan int c2;
    int run(int threshold) {
      int hits = 0;
      par {
        { /* stage 1: a sample source (pseudo-random walk) */
          int x = 7;
          for (int i = 0; i < %d; i = i + 1) {
            x = (x * 13 + 5) %% 64;
            send(c1, x);
          }
          send(c1, -1);
        }
        { /* stage 2: 3-tap moving average */
          int w0 = 0;
          int w1 = 0;
          int w2 = 0;
          int going = 1;
          while (going) {
            int v = recv(c1);
            if (v < 0) {
              send(c2, -1);
              going = 0;
            } else {
              w2 = w1;
              w1 = w0;
              w0 = v;
              send(c2, (w0 + w1 + w2) / 3);
            }
          }
        }
        { /* stage 3: count samples above the threshold */
          int going = 1;
          while (going) {
            int v = recv(c2);
            if (v < 0) { going = 0; }
            else {
              if (v > threshold) { hits = hits + 1; }
            }
          }
        }
      }
      return hits;
    }
    |}
    n

(* The same computation, sequentially, for the oracle cross-check. *)
let sequential_hits n threshold =
  let x = ref 7 and w = [| 0; 0; 0 |] and hits = ref 0 in
  for _ = 1 to n do
    x := (((!x * 13) + 5) mod 64 + 64) mod 64;
    w.(2) <- w.(1);
    w.(1) <- w.(0);
    w.(0) <- !x;
    if (w.(0) + w.(1) + w.(2)) / 3 > threshold then incr hits
  done;
  !hits

let () =
  print_endline "A streaming pipeline over rendezvous channels (Handel-C)\n";
  let n = 32 in
  let src = source n in
  let design = Chls.compile (Registry.get "handelc") src ~entry:"run" in
  List.iter
    (fun threshold ->
      let r = design.Design.run (Design.int_args [ threshold ]) in
      let hits = Bitvec.to_int (Option.get r.Design.result) in
      Printf.printf
        "  threshold %2d: %2d hits (expected %2d) — %d cycles for %d samples \
         (%.1f cycles/sample)\n"
        threshold hits
        (sequential_hits n threshold)
        (Option.get r.Design.cycles)
        n
        (float_of_int (Option.get r.Design.cycles) /. float_of_int n))
    [ 10; 25; 40 ];
  (* the software oracle agrees, through the thread-aware interpreter *)
  let oracle = Chls.reference src ~entry:"run" ~args:[ 25 ] in
  Printf.printf "\nSoftware semantics (untimed interpreter): %d hits at \
                 threshold 25\n" oracle;
  print_endline
    "\nEach rendezvous costs a cycle and synchronizes the stages; the \
     pipeline's\nthroughput is set by its slowest stage — concurrency the \
     designer wrote\nexplicitly, exactly as the paper describes for the \
     CSP-flavoured languages.";
  (* deadlock detection: break the protocol by dropping the terminator *)
  let broken =
    {|
    chan int c;
    int run(int n) {
      int got = 0;
      par {
        { send(c, n); }
        { got = recv(c); int second = recv(c); got = got + second; }
      }
      return got;
    }
    |}
  in
  match Chls.reference broken ~entry:"run" ~args:[ 1 ] with
  | exception Interp.Deadlock ->
    print_endline
      "\nAnd the classic CSP failure mode is caught: the broken protocol \
       (one send,\ntwo receives) deadlocks — detected by the interpreter."
  | _ -> print_endline "\nunexpected: broken protocol did not deadlock"
