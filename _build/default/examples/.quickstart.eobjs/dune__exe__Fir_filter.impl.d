examples/fir_filter.ml: Area Chls Design List Lower Out_channel Pipeline Printf Simplify String Workloads
