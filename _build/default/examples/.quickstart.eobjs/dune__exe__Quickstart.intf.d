examples/quickstart.mli:
