examples/ocapi_structural.mli:
