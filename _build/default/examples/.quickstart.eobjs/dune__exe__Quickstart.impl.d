examples/quickstart.ml: Bitvec Chls Design List Printf String
