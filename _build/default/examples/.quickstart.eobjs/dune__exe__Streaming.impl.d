examples/streaming.ml: Array Bitvec Chls Design Interp List Option Printf
