examples/codesign.mli:
