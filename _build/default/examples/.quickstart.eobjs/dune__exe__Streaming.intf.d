examples/streaming.mli:
