examples/ocapi_structural.ml: Area Bitvec Design Format List Netlist Ocapi Option Out_channel Printf String
