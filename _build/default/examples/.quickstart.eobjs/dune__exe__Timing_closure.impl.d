examples/timing_closure.ml: Bitvec Chls Design Hardwarec List Loopopt Option Printf Typecheck Workloads
