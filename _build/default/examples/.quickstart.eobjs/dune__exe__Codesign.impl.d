examples/codesign.ml: Bitvec Chls Design Interp List Option Printf Specc String Typecheck Workloads
