(* Ocapi-style structural design: "the user's C++ program runs to generate
   a data structure that represents hardware."  Here the user's *OCaml*
   program runs to generate the hardware: a serial multiply-accumulate
   engine over an on-chip coefficient memory, built state by state with
   the Ocapi combinators, then simulated and emitted as Verilog.

   Run with:  dune exec examples/ocapi_structural.exe *)

open Ocapi

let () =
  print_endline "Building a MAC engine structurally (the Ocapi way)\n";
  let b = create ~name:"mac_engine" in
  let x = input b ~name:"x" ~width:32 in
  let n = input b ~name:"n" ~width:32 in
  let acc = register b ~name:"acc" ~width:32 ~init:0 in
  let i = register b ~name:"i" ~width:32 ~init:0 in
  let coeff = memory b ~name:"coeff" ~width:32 ~depth:16 in
  set_result_width b 32;
  (* state 0: initialize the coefficient RAM: coeff[i] = i * 3 + 1.
     Transitions observe post-action values (see Ocapi), so the exit test
     compares the incremented counter against 16. *)
  let _s0 =
    add_state b
      [ Write (coeff, reg i, (reg i *: const ~width:32 3) +: const ~width:32 1);
        Set (i, reg i +: const ~width:32 1) ]
      (Branch (reg i ==: const ~width:32 16, 1, 0))
  in
  (* state 1: reset the counter *)
  let _s1 = add_state b [ Set (i, const ~width:32 0) ] (Goto 2) in
  (* state 2: multiply-accumulate loop: acc += coeff[i] * (x + i) *)
  let _s2 =
    add_state b
      [ Set (acc, reg acc +: (read coeff (reg i) *: (reg x +: reg i)));
        Set (i, reg i +: const ~width:32 1) ]
      (Branch (Bin (Netlist.B_ult, reg i, reg n), 2, 3))
  in
  (* state 3: done *)
  let _s3 = add_state b [] (Done (Some (reg acc))) in
  let design = to_design b in
  Printf.printf "Generated FSMD: %s states, clock period %.1f\n"
    (List.assoc "states" design.Design.stats)
    (Option.get design.Design.clock_period);
  (* run it *)
  List.iter
    (fun (x_val, n_val) ->
      let r = design.Design.run (Design.int_args [ x_val; n_val ]) in
      (* software model of the same computation *)
      let expected = ref 0 in
      for k = 0 to n_val - 1 do
        expected := !expected + (((k * 3) + 1) * (x_val + k))
      done;
      Printf.printf "  mac(x=%d, n=%d) = %d (expected %d) in %d cycles\n"
        x_val n_val
        (Bitvec.to_int (Option.get r.Design.result))
        !expected
        (Option.get r.Design.cycles))
    [ (1, 4); (10, 8); (0, 16) ];
  (* structural view *)
  (match design.Design.area () with
  | Some a -> Format.printf "Area: %a\n" Area.pp_report a
  | None -> ());
  match design.Design.verilog () with
  | Some v ->
    Out_channel.with_open_text "mac_engine.v" (fun oc -> output_string oc v);
    Printf.printf "Wrote mac_engine.v (%d bytes)\n" (String.length v)
  | None -> ()
