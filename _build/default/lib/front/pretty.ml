(* Pretty-printer for the CHLS AST: emits parseable source, used by tests
   (parse/print round-trips) and by diagnostic output. *)

open Format

let rec pp_expr fmt (e : Ast.expr) =
  match e.e with
  | Const (v, ty) ->
    let suffix =
      match ty with
      | Ctypes.Integer { kind = Ctypes.Long; signed = true } -> "l"
      | Ctypes.Integer { kind = Ctypes.Long; signed = false } -> "ul"
      | Ctypes.Integer { signed = false; _ } -> "u"
      | Ctypes.Integer _ | Ctypes.Void | Ctypes.Pointer _ | Ctypes.Array _
      | Ctypes.Function _ -> ""
    in
    fprintf fmt "%Ld%s" v suffix
  | Var name -> pp_print_string fmt name
  | Unop (op, a) -> fprintf fmt "%s(%a)" (Ast.string_of_unop op) pp_expr a
  | Binop (op, a, b) ->
    fprintf fmt "(%a %s %a)" pp_expr a (Ast.string_of_binop op) pp_expr b
  | Assign (l, r) -> fprintf fmt "%a = %a" pp_expr l pp_expr r
  | Cond (c, t, e) -> fprintf fmt "(%a ? %a : %a)" pp_expr c pp_expr t pp_expr e
  | Call (f, args) ->
    fprintf fmt "%s(%a)" f
      (pp_print_list ~pp_sep:(fun fmt () -> fprintf fmt ", ") pp_expr)
      args
  | Index (base, idx) -> fprintf fmt "%a[%a]" pp_expr base pp_expr idx
  | Deref a -> fprintf fmt "(*%a)" pp_expr a
  | Addr_of a -> fprintf fmt "(&%a)" pp_expr a
  | Cast (ty, a) -> fprintf fmt "((%s)%a)" (Ctypes.to_string ty) pp_expr a
  | Chan_recv ch -> fprintf fmt "recv(%s)" ch

let rec pp_stmt fmt (st : Ast.stmt) =
  match st.s with
  | Expr e -> fprintf fmt "@[%a;@]" pp_expr e
  | Decl (ty, name, init) -> (
    let base, suffix =
      match ty with
      | Ctypes.Array (elt, n) ->
        (Ctypes.to_string elt, Printf.sprintf "[%d]" n)
      | Ctypes.Void | Ctypes.Integer _ | Ctypes.Pointer _ | Ctypes.Function _
        -> (Ctypes.to_string ty, "")
    in
    match init with
    | None -> fprintf fmt "%s %s%s;" base name suffix
    | Some e -> fprintf fmt "@[%s %s%s = %a;@]" base name suffix pp_expr e)
  | If (c, t, []) ->
    fprintf fmt "@[<v 2>if (%a) {@,%a@]@,}" pp_expr c pp_block t
  | If (c, t, e) ->
    fprintf fmt "@[<v 2>if (%a) {@,%a@]@,@[<v 2>} else {@,%a@]@,}" pp_expr c
      pp_block t pp_block e
  | While (c, body) ->
    fprintf fmt "@[<v 2>while (%a) {@,%a@]@,}" pp_expr c pp_block body
  | Do_while (body, c) ->
    fprintf fmt "@[<v 2>do {@,%a@]@,} while (%a);" pp_block body pp_expr c
  | For (init, cond, step, body) ->
    let pp_init fmt = function
      | None -> fprintf fmt ";"
      | Some ({ Ast.s = Ast.Expr e; _ } : Ast.stmt) -> fprintf fmt "%a;" pp_expr e
      | Some st -> pp_stmt fmt st
    in
    let pp_opt fmt = function
      | None -> ()
      | Some e -> pp_expr fmt e
    in
    fprintf fmt "@[<v 2>for (%a %a; %a) {@,%a@]@,}" pp_init init pp_opt cond
      pp_opt step pp_block body
  | Return None -> fprintf fmt "return;"
  | Return (Some e) -> fprintf fmt "@[return %a;@]" pp_expr e
  | Break -> fprintf fmt "break;"
  | Continue -> fprintf fmt "continue;"
  | Block body -> fprintf fmt "@[<v 2>{@,%a@]@,}" pp_block body
  | Par branches ->
    fprintf fmt "@[<v 2>par {@,%a@]@,}"
      (pp_print_list (fun fmt b -> fprintf fmt "@[<v 2>{@,%a@]@,}" pp_block b))
      branches
  | Chan_send (ch, e) -> fprintf fmt "@[send(%s, %a);@]" ch pp_expr e
  | Delay -> fprintf fmt "delay;"
  | Constrain (lo, hi, body) ->
    fprintf fmt "@[<v 2>constrain(%d, %d) {@,%a@]@,}" lo hi pp_block body

and pp_block fmt body = pp_print_list pp_stmt fmt body

let pp_func fmt (f : Ast.func) =
  let pp_param fmt (ty, name) =
    fprintf fmt "%s %s" (Ctypes.to_string ty) name
  in
  fprintf fmt "@[<v 2>%s %s(%a) {@,%a@]@,}" (Ctypes.to_string f.f_ret)
    f.f_name
    (pp_print_list ~pp_sep:(fun fmt () -> fprintf fmt ", ") pp_param)
    f.f_params pp_block f.f_body

let pp_global fmt (g : Ast.global) =
  match (g.g_ty, g.g_init) with
  | Ctypes.Array (elt, n), None ->
    fprintf fmt "%s %s[%d];" (Ctypes.to_string elt) g.g_name n
  | Ctypes.Array (elt, n), Some values ->
    fprintf fmt "%s %s[%d] = {%s};" (Ctypes.to_string elt) g.g_name n
      (String.concat ", " (List.map Int64.to_string values))
  | ty, Some [ v ] -> fprintf fmt "%s %s = %Ld;" (Ctypes.to_string ty) g.g_name v
  | ty, _ -> fprintf fmt "%s %s;" (Ctypes.to_string ty) g.g_name

let pp_program fmt (p : Ast.program) =
  let pp_chan fmt (c : Ast.chan) =
    fprintf fmt "chan %s %s;" (Ctypes.to_string c.c_ty) c.c_name
  in
  fprintf fmt "@[<v>%a%s%a%s%a@]"
    (pp_print_list pp_global) p.globals
    (if p.globals = [] then "" else "\n")
    (pp_print_list pp_chan) p.chans
    (if p.chans = [] then "" else "\n")
    (pp_print_list ~pp_sep:(fun fmt () -> fprintf fmt "@,@,") pp_func)
    p.funcs

let expr_to_string e = Format.asprintf "%a" pp_expr e
let stmt_to_string s = Format.asprintf "%a" pp_stmt s
let func_to_string f = Format.asprintf "%a" pp_func f
let program_to_string p = Format.asprintf "%a" pp_program p
