(** Pretty-printer for the CHLS AST: emits parseable source (used by the
    print/parse round-trip tests and diagnostics). *)

val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_stmt : Format.formatter -> Ast.stmt -> unit
val pp_block : Format.formatter -> Ast.block -> unit
val pp_func : Format.formatter -> Ast.func -> unit
val pp_global : Format.formatter -> Ast.global -> unit
val pp_program : Format.formatter -> Ast.program -> unit

val expr_to_string : Ast.expr -> string
val stmt_to_string : Ast.stmt -> string
val func_to_string : Ast.func -> string
val program_to_string : Ast.program -> string
