(* Abstract syntax for the CHLS C-like source language.

   The base language is a C subset (integers, arrays, pointers, functions,
   structured control flow).  On top of it sit the hardware extensions the
   surveyed languages add — each is legal only in the dialects that have it
   (see dialect.ml):

     par { {...} {...} }          Handel-C / Bach C / SpecC concurrency
     send(ch, e); / recv(ch)      OCCAM-style rendezvous channels
     delay;                       Handel-C explicit one-cycle delay
     constrain(min, max) { ... }  HardwareC min/max timing constraints *)

type loc = { line : int; col : int }

let no_loc = { line = 0; col = 0 }

type unop = Neg | Bit_not | Log_not

type binop =
  | Add | Sub | Mul | Div | Mod
  | Band | Bor | Bxor | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge
  | Log_and | Log_or

type expr = { e : expr_desc; mutable ty : Ctypes.t; eloc : loc }

and expr_desc =
  | Const of int64 * Ctypes.t
  | Var of string
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Assign of expr * expr (* lvalue = rvalue *)
  | Cond of expr * expr * expr
  | Call of string * expr list
  | Index of expr * expr
  | Deref of expr
  | Addr_of of expr
  | Cast of Ctypes.t * expr
  | Chan_recv of string

type stmt = { s : stmt_desc; sloc : loc }

and stmt_desc =
  | Expr of expr
  | Decl of Ctypes.t * string * expr option
  | If of expr * block * block
  | While of expr * block
  | Do_while of block * expr
  | For of stmt option * expr option * expr option * block
  | Return of expr option
  | Break
  | Continue
  | Block of block
  | Par of block list
  | Chan_send of string * expr
  | Delay
  | Constrain of int * int * block

and block = stmt list

type global = {
  g_name : string;
  g_ty : Ctypes.t;
  g_init : int64 list option; (* scalars: singleton; arrays: element list *)
}

type chan = { c_name : string; c_ty : Ctypes.t }

type func = {
  f_name : string;
  f_ret : Ctypes.t;
  f_params : (Ctypes.t * string) list;
  f_body : block;
}

type program = { globals : global list; chans : chan list; funcs : func list }

let mk_expr ?(loc = no_loc) e = { e; ty = Ctypes.Void; eloc = loc }
let mk_stmt ?(loc = no_loc) s = { s; sloc = loc }

let find_func program name =
  List.find_opt (fun f -> String.equal f.f_name name) program.funcs

let find_global program name =
  List.find_opt (fun g -> String.equal g.g_name name) program.globals

let find_chan program name =
  List.find_opt (fun c -> String.equal c.c_name name) program.chans

let string_of_unop = function Neg -> "-" | Bit_not -> "~" | Log_not -> "!"

let string_of_binop = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Band -> "&" | Bor -> "|" | Bxor -> "^" | Shl -> "<<" | Shr -> ">>"
  | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | Log_and -> "&&" | Log_or -> "||"

(* Structural traversals used by the dialect checker and analyses. *)

let rec iter_expr f expr =
  f expr;
  match expr.e with
  | Const _ | Var _ | Chan_recv _ -> ()
  | Unop (_, a) | Cast (_, a) | Deref a | Addr_of a -> iter_expr f a
  | Binop (_, a, b) | Assign (a, b) | Index (a, b) ->
    iter_expr f a;
    iter_expr f b
  | Cond (a, b, c) ->
    iter_expr f a;
    iter_expr f b;
    iter_expr f c
  | Call (_, args) -> List.iter (iter_expr f) args

let rec iter_stmt ~stmt:fs ~expr:fe st =
  fs st;
  let expr_opt = function None -> () | Some e -> iter_expr fe e in
  match st.s with
  | Expr e | Chan_send (_, e) -> iter_expr fe e
  | Decl (_, _, init) -> expr_opt init
  | If (c, t, e) ->
    iter_expr fe c;
    List.iter (iter_stmt ~stmt:fs ~expr:fe) t;
    List.iter (iter_stmt ~stmt:fs ~expr:fe) e
  | While (c, body) ->
    iter_expr fe c;
    List.iter (iter_stmt ~stmt:fs ~expr:fe) body
  | Do_while (body, c) ->
    List.iter (iter_stmt ~stmt:fs ~expr:fe) body;
    iter_expr fe c
  | For (init, cond, step, body) ->
    (match init with None -> () | Some st -> iter_stmt ~stmt:fs ~expr:fe st);
    expr_opt cond;
    expr_opt step;
    List.iter (iter_stmt ~stmt:fs ~expr:fe) body
  | Return e -> expr_opt e
  | Break | Continue | Delay -> ()
  | Block body | Constrain (_, _, body) ->
    List.iter (iter_stmt ~stmt:fs ~expr:fe) body
  | Par blocks -> List.iter (List.iter (iter_stmt ~stmt:fs ~expr:fe)) blocks

let iter_func ~stmt ~expr func = List.iter (iter_stmt ~stmt ~expr) func.f_body

(** True if any statement of [func] satisfies [pred]. *)
let exists_stmt pred func =
  let found = ref false in
  iter_func ~stmt:(fun s -> if pred s then found := true) ~expr:(fun _ -> ())
    func;
  !found

(** True if any expression of [func] satisfies [pred]. *)
let exists_expr pred func =
  let found = ref false in
  iter_func ~stmt:(fun _ -> ()) ~expr:(fun e -> if pred e then found := true)
    func;
  !found
