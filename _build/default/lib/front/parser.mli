(** Recursive-descent parser for the CHLS C-like language.

    Standard C expression grammar (precedence climbing) and C89-style
    declarations restricted to what the surveyed languages need, plus the
    hardware-extension statements.  Compound assignments and [++]/[--]
    are desugared to plain assignments (pre-increment value semantics,
    documented in README). *)

exception Error of string * Ast.loc

val parse_program : string -> Ast.program
(** Parse a complete translation unit.
    @raise Error (or {!Lexer.Error}) on malformed input. *)

val parse_expression : string -> Ast.expr
(** Parse a single expression (tests and tooling). *)
