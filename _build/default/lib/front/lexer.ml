(* Hand-written lexer for the CHLS C-like language. *)

type token =
  | INT of int64 * [ `Plain | `Unsigned | `Long | `Unsigned_long ]
  | ID of string
  | KW of string
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | AMP | PIPE | CARET | TILDE | BANG
  | LSHIFT | RSHIFT
  | EQEQ | NEQ | LT | LE | GT | GE
  | ANDAND | OROR
  | ASSIGN
  | OP_ASSIGN of string (* "+=", "-=", ... desugared by the parser *)
  | PLUSPLUS | MINUSMINUS
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA | QUESTION | COLON
  | EOF

type tok = { t : token; tline : int; tcol : int }

exception Error of string * Ast.loc

let keywords =
  [ "void"; "bool"; "_Bool"; "char"; "short"; "int"; "long"; "unsigned";
    "signed"; "if"; "else"; "while"; "do"; "for"; "return"; "break";
    "continue"; "par"; "send"; "recv"; "delay"; "constrain"; "chan"; "true";
    "false" ]

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let is_hex_digit c =
  is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int; (* offset of beginning of current line *)
}

let loc st : Ast.loc = { line = st.line; col = st.pos - st.bol + 1 }
let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
    st.line <- st.line + 1;
    st.bol <- st.pos + 1
  | Some _ | None -> ());
  st.pos <- st.pos + 1

let rec skip_trivia st =
  match (peek st, peek2 st) with
  | Some (' ' | '\t' | '\r' | '\n'), _ ->
    advance st;
    skip_trivia st
  | Some '/', Some '/' ->
    while peek st <> None && peek st <> Some '\n' do
      advance st
    done;
    skip_trivia st
  | Some '/', Some '*' ->
    advance st;
    advance st;
    let rec close () =
      match (peek st, peek2 st) with
      | Some '*', Some '/' ->
        advance st;
        advance st
      | None, _ -> raise (Error ("unterminated comment", loc st))
      | Some _, _ ->
        advance st;
        close ()
    in
    close ();
    skip_trivia st
  | (Some _ | None), _ -> ()

let lex_number st =
  let start = st.pos in
  let hex =
    peek st = Some '0' && (peek2 st = Some 'x' || peek2 st = Some 'X')
  in
  if hex then begin
    advance st;
    advance st;
    while match peek st with Some c -> is_hex_digit c | None -> false do
      advance st
    done
  end
  else
    while match peek st with Some c -> is_digit c | None -> false do
      advance st
    done;
  let digits = String.sub st.src start (st.pos - start) in
  let value = Int64.of_string digits in
  let suffix = ref `Plain in
  let rec suffixes () =
    match peek st with
    | Some ('u' | 'U') ->
      advance st;
      suffix :=
        (match !suffix with
        | `Plain -> `Unsigned
        | `Long | `Unsigned_long -> `Unsigned_long
        | `Unsigned -> `Unsigned);
      suffixes ()
    | Some ('l' | 'L') ->
      advance st;
      suffix :=
        (match !suffix with
        | `Plain -> `Long
        | `Unsigned | `Unsigned_long -> `Unsigned_long
        | `Long -> `Long);
      suffixes ()
    | Some _ | None -> ()
  in
  suffixes ();
  INT (value, !suffix)

let lex_char_literal st =
  advance st; (* opening quote *)
  let c =
    match peek st with
    | Some '\\' -> (
      advance st;
      match peek st with
      | Some 'n' -> '\n'
      | Some 't' -> '\t'
      | Some 'r' -> '\r'
      | Some '0' -> '\000'
      | Some '\\' -> '\\'
      | Some '\'' -> '\''
      | Some c -> c
      | None -> raise (Error ("unterminated char literal", loc st)))
    | Some c -> c
    | None -> raise (Error ("unterminated char literal", loc st))
  in
  advance st;
  (match peek st with
  | Some '\'' -> advance st
  | Some _ | None -> raise (Error ("unterminated char literal", loc st)));
  INT (Int64.of_int (Char.code c), `Plain)

let lex_token st =
  skip_trivia st;
  let l = loc st in
  let two tok = advance st; advance st; tok in
  let one tok = advance st; tok in
  let token =
    match (peek st, peek2 st) with
    | None, _ -> EOF
    | Some '\'', _ -> lex_char_literal st
    | Some c, _ when is_digit c -> lex_number st
    | Some c, _ when is_ident_start c ->
      let start = st.pos in
      while match peek st with Some c -> is_ident_char c | None -> false do
        advance st
      done;
      let name = String.sub st.src start (st.pos - start) in
      if List.mem name keywords then KW name else ID name
    | Some '+', Some '+' -> two PLUSPLUS
    | Some '-', Some '-' -> two MINUSMINUS
    | Some '+', Some '=' -> two (OP_ASSIGN "+")
    | Some '-', Some '=' -> two (OP_ASSIGN "-")
    | Some '*', Some '=' -> two (OP_ASSIGN "*")
    | Some '/', Some '=' -> two (OP_ASSIGN "/")
    | Some '%', Some '=' -> two (OP_ASSIGN "%")
    | Some '&', Some '=' -> two (OP_ASSIGN "&")
    | Some '|', Some '=' -> two (OP_ASSIGN "|")
    | Some '^', Some '=' -> two (OP_ASSIGN "^")
    | Some '<', Some '<' ->
      advance st;
      advance st;
      if peek st = Some '=' then one (OP_ASSIGN "<<") else LSHIFT
    | Some '>', Some '>' ->
      advance st;
      advance st;
      if peek st = Some '=' then one (OP_ASSIGN ">>") else RSHIFT
    | Some '=', Some '=' -> two EQEQ
    | Some '!', Some '=' -> two NEQ
    | Some '<', Some '=' -> two LE
    | Some '>', Some '=' -> two GE
    | Some '&', Some '&' -> two ANDAND
    | Some '|', Some '|' -> two OROR
    | Some '+', _ -> one PLUS
    | Some '-', _ -> one MINUS
    | Some '*', _ -> one STAR
    | Some '/', _ -> one SLASH
    | Some '%', _ -> one PERCENT
    | Some '&', _ -> one AMP
    | Some '|', _ -> one PIPE
    | Some '^', _ -> one CARET
    | Some '~', _ -> one TILDE
    | Some '!', _ -> one BANG
    | Some '<', _ -> one LT
    | Some '>', _ -> one GT
    | Some '=', _ -> one ASSIGN
    | Some '(', _ -> one LPAREN
    | Some ')', _ -> one RPAREN
    | Some '{', _ -> one LBRACE
    | Some '}', _ -> one RBRACE
    | Some '[', _ -> one LBRACKET
    | Some ']', _ -> one RBRACKET
    | Some ';', _ -> one SEMI
    | Some ',', _ -> one COMMA
    | Some '?', _ -> one QUESTION
    | Some ':', _ -> one COLON
    | Some c, _ ->
      raise (Error (Printf.sprintf "unexpected character %C" c, l))
  in
  { t = token; tline = l.line; tcol = l.col }

(** Tokenize a complete source string (the trailing token is [EOF]). *)
let tokenize src =
  let st = { src; pos = 0; line = 1; bol = 0 } in
  let rec go acc =
    let tok = lex_token st in
    match tok.t with EOF -> List.rev (tok :: acc) | _ -> go (tok :: acc)
  in
  go []
