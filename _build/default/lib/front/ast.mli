(** Abstract syntax for the CHLS C-like source language: a C subset plus
    the hardware extensions the surveyed languages add —

    {ul
    {- [par { {...} {...} }]: Handel-C / Bach C / SpecC concurrency;}
    {- [send(ch, e)] / [recv(ch)]: OCCAM-style rendezvous channels;}
    {- [delay;]: Handel-C's explicit one-cycle delay;}
    {- [constrain(min, max) { ... }]: HardwareC timing constraints.}}

    Each extension is legal only in the dialects that have it
    (see {!Dialect}). *)

type loc = { line : int; col : int }

val no_loc : loc

type unop = Neg | Bit_not | Log_not

type binop =
  | Add | Sub | Mul | Div | Mod
  | Band | Bor | Bxor | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge
  | Log_and | Log_or

type expr = { e : expr_desc; mutable ty : Ctypes.t; eloc : loc }
(** [ty] is filled by the type checker ([Void] until then). *)

and expr_desc =
  | Const of int64 * Ctypes.t
  | Var of string
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Assign of expr * expr  (** lvalue = rvalue *)
  | Cond of expr * expr * expr
  | Call of string * expr list
  | Index of expr * expr
  | Deref of expr
  | Addr_of of expr
  | Cast of Ctypes.t * expr
  | Chan_recv of string

type stmt = { s : stmt_desc; sloc : loc }

and stmt_desc =
  | Expr of expr
  | Decl of Ctypes.t * string * expr option
  | If of expr * block * block
  | While of expr * block
  | Do_while of block * expr
  | For of stmt option * expr option * expr option * block
  | Return of expr option
  | Break
  | Continue
  | Block of block
  | Par of block list
  | Chan_send of string * expr
  | Delay
  | Constrain of int * int * block

and block = stmt list

type global = {
  g_name : string;
  g_ty : Ctypes.t;
  g_init : int64 list option;
      (** scalars: singleton; arrays: element list *)
}

type chan = { c_name : string; c_ty : Ctypes.t }

type func = {
  f_name : string;
  f_ret : Ctypes.t;
  f_params : (Ctypes.t * string) list;
  f_body : block;
}

type program = { globals : global list; chans : chan list; funcs : func list }

val mk_expr : ?loc:loc -> expr_desc -> expr
val mk_stmt : ?loc:loc -> stmt_desc -> stmt

val find_func : program -> string -> func option
val find_global : program -> string -> global option
val find_chan : program -> string -> chan option

val string_of_unop : unop -> string
val string_of_binop : binop -> string

(** {1 Structural traversals} (dialect checking and analyses) *)

val iter_expr : (expr -> unit) -> expr -> unit

val iter_stmt : stmt:(stmt -> unit) -> expr:(expr -> unit) -> stmt -> unit

val iter_func : stmt:(stmt -> unit) -> expr:(expr -> unit) -> func -> unit

val exists_stmt : (stmt -> bool) -> func -> bool
val exists_expr : (expr -> bool) -> func -> bool
