(** C types for the CHLS frontend.

    The paper's data-type complaint made concrete: [ikind] has exactly
    the standard C widths (1/8/16/32/64); bit-accurate narrowing is
    recovered later by the bitwidth analysis (experiment E8). *)

type ikind = Bool | Char | Short | Int | Long

val width_of_ikind : ikind -> int
val rank_of_ikind : ikind -> int

type t =
  | Void
  | Integer of { kind : ikind; signed : bool }
  | Pointer of t
  | Array of t * int
  | Function of { ret : t; params : t list }

val bool_t : t
val char_t : t
val uchar_t : t
val short_t : t
val ushort_t : t
val int_t : t
val uint_t : t
val long_t : t
val ulong_t : t

val is_integer : t -> bool
val is_pointer : t -> bool
val is_scalar : t -> bool

val pointer_width : int
(** Pointers are word addresses: 32 bits. *)

val width : t -> int
(** Width in bits of a value of this type (array: its element). *)

val is_signed : t -> bool

val word_count : t -> int
(** Words occupied in the word-addressed memory model (each scalar
    element = one word). *)

val promote : t -> t
(** Integer promotion: narrower than [int] promotes to [int]. *)

val arithmetic_conversion : t -> t -> t
(** Usual arithmetic conversions for two integer operands. *)

val decay : t -> t
(** Array-to-pointer decay in rvalue contexts. *)

val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit
