(** Recognition of statically bounded counting loops of the shape

    {[ for (<ty> i = C0; i <relop> C1; i = i +/- C2) ]}

    used by the Cones unroller, the source-level loop transforms, and the
    dialect checker's bounded-loop rules. *)

type bounds = {
  var : string;
  start : int;
  relop : Ast.binop;
  limit : int;
  step : int;  (** signed increment per iteration *)
}

val recognize :
  init:Ast.stmt option -> cond:Ast.expr option -> step:Ast.expr option ->
  bounds option

val trip_count : bounds -> int option
(** Number of iterations, when the loop provably terminates. *)

val is_statically_bounded :
  init:Ast.stmt option -> cond:Ast.expr option -> step:Ast.expr option ->
  bool

val iteration_values : bounds -> int list option
(** Values taken by the induction variable, in iteration order. *)
