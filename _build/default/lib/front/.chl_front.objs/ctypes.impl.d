lib/front/ctypes.ml: Format List Printf String
