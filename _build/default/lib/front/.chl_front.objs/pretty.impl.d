lib/front/pretty.ml: Ast Ctypes Format Int64 List Printf String
