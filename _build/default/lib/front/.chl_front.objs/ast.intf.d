lib/front/ast.mli: Ctypes
