lib/front/interp.ml: Array Ast Bitvec Ctypes Fun Hashtbl List Option Printf String Typecheck
