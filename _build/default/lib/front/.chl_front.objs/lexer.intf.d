lib/front/lexer.mli: Ast
