lib/front/typecheck.ml: Ast Ctypes Hashtbl List Option Parser Printf
