lib/front/ast.ml: Ctypes List String
