lib/front/lexer.ml: Ast Char Int64 List Printf String
