lib/front/loopform.ml: Ast Int64 List Option String
