lib/front/dialect.ml: Ast Ctypes Hashtbl List Loopform String
