lib/front/loopform.mli: Ast
