lib/front/typecheck.mli: Ast Ctypes
