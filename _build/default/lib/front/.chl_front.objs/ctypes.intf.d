lib/front/ctypes.mli: Format
