lib/front/dialect.mli: Ast
