lib/front/interp.mli: Ast Bitvec Ctypes Hashtbl
