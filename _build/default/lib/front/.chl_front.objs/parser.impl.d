lib/front/parser.ml: Array Ast Ctypes Int32 Int64 Lexer List Option
