(** Type checker / elaborator.

    Checks a parsed program and returns an elaborated copy in which every
    expression carries its type and every implicit C conversion (integer
    promotion, usual arithmetic conversion, assignment conversion) has
    been made explicit as a [Cast] node — conversion *to* [bool] is
    desugared to an explicit [!= 0] per C11 _Bool semantics.  Downstream
    lowering can then translate operators width-for-width. *)

exception Error of string * Ast.loc

val builtin_signature : string -> (Ctypes.t * Ctypes.t list) option
(** Builtins available without declaration (currently [malloc]). *)

val check_program : Ast.program -> Ast.program
(** Check and elaborate a whole program.
    @raise Error on any type violation. *)

val check_func : Ast.program -> Ast.func -> Ast.func

val parse_and_check : string -> Ast.program
(** Convenience: parse then check. *)
