(** Hand-written lexer for the CHLS C-like language: C tokens plus the
    hardware-extension keywords ([par], [send], [recv], [delay],
    [constrain], [chan]). *)

type token =
  | INT of int64 * [ `Plain | `Unsigned | `Long | `Unsigned_long ]
  | ID of string
  | KW of string
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | AMP | PIPE | CARET | TILDE | BANG
  | LSHIFT | RSHIFT
  | EQEQ | NEQ | LT | LE | GT | GE
  | ANDAND | OROR
  | ASSIGN
  | OP_ASSIGN of string  (** "+=", "-=", ...: desugared by the parser *)
  | PLUSPLUS | MINUSMINUS
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA | QUESTION | COLON
  | EOF

type tok = { t : token; tline : int; tcol : int }

exception Error of string * Ast.loc

val keywords : string list

val tokenize : string -> tok list
(** Tokenize a complete source string; the trailing token is [EOF].
    @raise Error on malformed input (bad characters, unterminated
    comments or character literals). *)
