(* C types for the CHLS frontend.

   The paper's point about data types: C offers exactly four integer sizes
   tied to the PDP-11's word sizes, while hardware wants arbitrary bit
   vectors.  We model the C side faithfully here ([ikind] has the standard
   widths); bit-accurate narrowing is recovered later by the bitwidth
   analysis (lib/ir/bitwidth.ml), which is experiment E8. *)

type ikind = Bool | Char | Short | Int | Long

let width_of_ikind = function
  | Bool -> 1
  | Char -> 8
  | Short -> 16
  | Int -> 32
  | Long -> 64

let rank_of_ikind = function
  | Bool -> 0 | Char -> 1 | Short -> 2 | Int -> 3 | Long -> 4

type t =
  | Void
  | Integer of { kind : ikind; signed : bool }
  | Pointer of t
  | Array of t * int
  | Function of { ret : t; params : t list }

let bool_t = Integer { kind = Bool; signed = false }
let char_t = Integer { kind = Char; signed = true }
let uchar_t = Integer { kind = Char; signed = false }
let short_t = Integer { kind = Short; signed = true }
let ushort_t = Integer { kind = Short; signed = false }
let int_t = Integer { kind = Int; signed = true }
let uint_t = Integer { kind = Int; signed = false }
let long_t = Integer { kind = Long; signed = true }
let ulong_t = Integer { kind = Long; signed = false }

let is_integer = function
  | Integer _ -> true
  | Void | Pointer _ | Array _ | Function _ -> false

let is_pointer = function
  | Pointer _ -> true
  | Void | Integer _ | Array _ | Function _ -> false

let is_scalar t = is_integer t || is_pointer t

(** Width in bits of a value of this type (pointers are word addresses). *)
let pointer_width = 32

let rec width = function
  | Void -> 0
  | Integer { kind; _ } -> width_of_ikind kind
  | Pointer _ -> pointer_width
  | Array (elt, _) -> width elt
  | Function _ -> 0

let is_signed = function
  | Integer { signed; _ } -> signed
  | Void | Pointer _ | Array _ | Function _ -> false

(** Number of words a variable of this type occupies in the word-addressed
    memory model (each scalar element = one word). *)
let rec word_count = function
  | Void | Function _ -> 0
  | Integer _ | Pointer _ -> 1
  | Array (elt, n) -> n * word_count elt

(** Integer promotion: everything narrower than int promotes to int. *)
let promote = function
  | Integer { kind; _ } when rank_of_ikind kind < rank_of_ikind Int -> int_t
  | t -> t

(** Usual arithmetic conversions for two promoted integer operands. *)
let arithmetic_conversion a b =
  match (promote a, promote b) with
  | Integer ia, Integer ib ->
    let ra = rank_of_ikind ia.kind and rb = rank_of_ikind ib.kind in
    if ra = rb then Integer { kind = ia.kind; signed = ia.signed && ib.signed }
    else if ra > rb then Integer ia
    else Integer ib
  | (Void | Pointer _ | Array _ | Function _), _
  | _, (Void | Pointer _ | Array _ | Function _) ->
    invalid_arg "Ctypes.arithmetic_conversion: non-integer operand"

(** Array-to-pointer decay in rvalue contexts. *)
let decay = function Array (elt, _) -> Pointer elt | t -> t

let equal (a : t) (b : t) = a = b

let rec to_string = function
  | Void -> "void"
  | Integer { kind; signed } ->
    let base =
      match kind with
      | Bool -> "bool" | Char -> "char" | Short -> "short" | Int -> "int"
      | Long -> "long"
    in
    if signed || kind = Bool then base else "unsigned " ^ base
  | Pointer t -> to_string t ^ "*"
  | Array (t, n) -> Printf.sprintf "%s[%d]" (to_string t) n
  | Function { ret; params } ->
    Printf.sprintf "%s(%s)" (to_string ret)
      (String.concat ", " (List.map to_string params))

let pp fmt t = Format.pp_print_string fmt (to_string t)
