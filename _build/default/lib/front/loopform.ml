(* Recognition of statically bounded counting loops.

   Several places need to know whether a for loop has a compile-time trip
   count: the Cones backend must fully unroll every loop, the loop
   unroller needs the bounds, and the dialect checker rejects unbounded
   loops where the language does.  The recognized shape is

     for (<ty> i = C0; i <relop> C1; i = i + C2)   (or i = i - C2)

   with constant C0, C1, C2 and no assignment to [i] in the loop body
   (the caller checks the body separately when it matters). *)

type bounds = {
  var : string;
  start : int;
  relop : Ast.binop;
  limit : int;
  step : int; (* signed increment per iteration *)
}

let const_value (e : Ast.expr) =
  match e.e with
  | Ast.Const (v, _) -> Some (Int64.to_int v)
  | Ast.Unop (Ast.Neg, { e = Ast.Const (v, _); _ }) ->
    Some (-Int64.to_int v)
  | Ast.Cast (_, { e = Ast.Const (v, _); _ }) -> Some (Int64.to_int v)
  | Ast.Var _ | Ast.Unop _ | Ast.Binop _ | Ast.Assign _ | Ast.Cond _
  | Ast.Call _ | Ast.Index _ | Ast.Deref _ | Ast.Addr_of _ | Ast.Cast _
  | Ast.Chan_recv _ -> None

(* Strip the casts the type checker inserts. *)
let rec strip (e : Ast.expr) =
  match e.e with Ast.Cast (_, inner) -> strip inner | _ -> e

let recognize ~init ~cond ~step : bounds option =
  let open Ast in
  let var_and_start =
    match init with
    | Some { s = Decl (_, name, Some e); _ } ->
      Option.map (fun v -> (name, v)) (const_value (strip e))
    | Some { s = Expr { e = Assign ({ e = Var name; _ }, e); _ }; _ } ->
      Option.map (fun v -> (name, v)) (const_value (strip e))
    | Some _ | None -> None
  in
  match var_and_start with
  | None -> None
  | Some (var, start) -> (
    let limit =
      match cond with
      | Some { e = Binop ((Lt | Le | Gt | Ge | Ne) as relop, l, r); _ } -> (
        match ((strip l).e, const_value (strip r)) with
        | Var name, Some v when String.equal name var -> Some (relop, v)
        | _ -> None)
      | Some _ | None -> None
    in
    let increment =
      match step with
      | Some { e = Assign ({ e = Var name; _ }, rhs); _ }
        when String.equal name var -> (
        match (strip rhs).e with
        | Binop (Add, l, r) -> (
          match ((strip l).e, const_value (strip r)) with
          | Var n, Some v when String.equal n var -> Some v
          | _ -> None)
        | Binop (Sub, l, r) -> (
          match ((strip l).e, const_value (strip r)) with
          | Var n, Some v when String.equal n var -> Some (-v)
          | _ -> None)
        | _ -> None)
      | Some _ | None -> None
    in
    match (limit, increment) with
    | Some (relop, limit), Some step when step <> 0 ->
      Some { var; start; relop; limit; step }
    | _ -> None)

(** Trip count of a recognized loop, if it terminates. *)
let trip_count b =
  let open Ast in
  let count_up lo hi inclusive =
    let span = hi - lo + (if inclusive then 1 else 0) in
    if span <= 0 then Some 0 else Some ((span + b.step - 1) / b.step)
  in
  let count_down hi lo inclusive =
    let span = hi - lo + (if inclusive then 1 else 0) in
    let s = -b.step in
    if span <= 0 then Some 0 else Some ((span + s - 1) / s)
  in
  match b.relop with
  | Lt when b.step > 0 -> count_up b.start b.limit false
  | Le when b.step > 0 -> count_up b.start b.limit true
  | Gt when b.step < 0 -> count_down b.start b.limit false
  | Ge when b.step < 0 -> count_down b.start b.limit true
  | Ne when b.step = 1 && b.limit >= b.start -> Some (b.limit - b.start)
  | Ne when b.step = -1 && b.limit <= b.start -> Some (b.start - b.limit)
  | Lt | Le | Gt | Ge | Ne -> None
  | Add | Sub | Mul | Div | Mod | Band | Bor | Bxor | Shl | Shr | Eq
  | Log_and | Log_or -> None

let is_statically_bounded ~init ~cond ~step =
  match recognize ~init ~cond ~step with
  | None -> false
  | Some b -> trip_count b <> None

(** Values taken by the induction variable, in iteration order. *)
let iteration_values b =
  match trip_count b with
  | None -> None
  | Some n -> Some (List.init n (fun i -> b.start + (i * b.step)))
