(* Recursive-descent parser for the CHLS C-like language.

   Standard C expression grammar (precedence climbing), C89-style
   declarations restricted to what the surveyed languages need, plus the
   hardware-extension statements.  Compound assignments and ++/-- are
   desugared to plain assignments here; their value, when used as an
   expression, follows the pre-increment convention (documented in README). *)

exception Error of string * Ast.loc

type state = { toks : Lexer.tok array; mutable pos : int }

let cur st = st.toks.(st.pos)
let cur_loc st : Ast.loc = { line = (cur st).tline; col = (cur st).tcol }
let peek_token st = (cur st).t

let peek_token2 st =
  if st.pos + 1 < Array.length st.toks then st.toks.(st.pos + 1).t
  else Lexer.EOF

let advance st = if st.pos + 1 < Array.length st.toks then st.pos <- st.pos + 1

let fail st msg = raise (Error (msg, cur_loc st))

let expect st token msg =
  if peek_token st = token then advance st else fail st ("expected " ^ msg)

let expect_ident st =
  match peek_token st with
  | Lexer.ID name ->
    advance st;
    name
  | _ -> fail st "expected identifier"

(* --- types --- *)

let type_keyword = function
  | "void" | "bool" | "_Bool" | "char" | "short" | "int" | "long"
  | "unsigned" | "signed" -> true
  | _ -> false

let starts_type st =
  match peek_token st with Lexer.KW kw -> type_keyword kw | _ -> false

(** Parse a base type specifier: sequences like [unsigned long]. *)
let parse_base_type st =
  let signedness = ref None and kind = ref None and void = ref false in
  let rec go () =
    match peek_token st with
    | Lexer.KW "void" -> advance st; void := true; go ()
    | Lexer.KW ("bool" | "_Bool") ->
      advance st;
      kind := Some Ctypes.Bool;
      go ()
    | Lexer.KW "char" -> advance st; kind := Some Ctypes.Char; go ()
    | Lexer.KW "short" -> advance st; kind := Some Ctypes.Short; go ()
    | Lexer.KW "int" ->
      advance st;
      if !kind = None then kind := Some Ctypes.Int;
      go ()
    | Lexer.KW "long" -> advance st; kind := Some Ctypes.Long; go ()
    | Lexer.KW "unsigned" -> advance st; signedness := Some false; go ()
    | Lexer.KW "signed" -> advance st; signedness := Some true; go ()
    | _ -> ()
  in
  go ();
  if !void then Ctypes.Void
  else
    match !kind, !signedness with
    | None, None -> fail st "expected type"
    | None, Some s -> Ctypes.Integer { kind = Ctypes.Int; signed = s }
    | Some Ctypes.Bool, _ -> Ctypes.bool_t
    | Some k, s ->
      Ctypes.Integer { kind = k; signed = Option.value s ~default:true }

(** Base type plus pointer stars: the part of a declaration before the
    declarator name. *)
let parse_type_prefix st =
  let base = parse_base_type st in
  let rec stars t =
    if peek_token st = Lexer.STAR then begin
      advance st;
      stars (Ctypes.Pointer t)
    end
    else t
  in
  stars base

(* --- expressions --- *)

let rec parse_expr st = parse_assignment st

and parse_assignment st =
  let loc = cur_loc st in
  let lhs = parse_conditional st in
  match peek_token st with
  | Lexer.ASSIGN ->
    advance st;
    let rhs = parse_assignment st in
    Ast.mk_expr ~loc (Ast.Assign (lhs, rhs))
  | Lexer.OP_ASSIGN op ->
    advance st;
    let rhs = parse_assignment st in
    let bop =
      match op with
      | "+" -> Ast.Add | "-" -> Ast.Sub | "*" -> Ast.Mul | "/" -> Ast.Div
      | "%" -> Ast.Mod | "&" -> Ast.Band | "|" -> Ast.Bor | "^" -> Ast.Bxor
      | "<<" -> Ast.Shl | ">>" -> Ast.Shr
      | _ -> fail st "bad compound assignment"
    in
    Ast.mk_expr ~loc (Ast.Assign (lhs, Ast.mk_expr ~loc (Ast.Binop (bop, lhs, rhs))))
  | _ -> lhs

and parse_conditional st =
  let loc = cur_loc st in
  let cond = parse_binary st 0 in
  if peek_token st = Lexer.QUESTION then begin
    advance st;
    let then_e = parse_expr st in
    expect st Lexer.COLON "':'";
    let else_e = parse_conditional st in
    Ast.mk_expr ~loc (Ast.Cond (cond, then_e, else_e))
  end
  else cond

(* Binary operators by precedence level, loosest first. *)
and binop_at_level level token =
  match (level, token) with
  | 0, Lexer.OROR -> Some Ast.Log_or
  | 1, Lexer.ANDAND -> Some Ast.Log_and
  | 2, Lexer.PIPE -> Some Ast.Bor
  | 3, Lexer.CARET -> Some Ast.Bxor
  | 4, Lexer.AMP -> Some Ast.Band
  | 5, Lexer.EQEQ -> Some Ast.Eq
  | 5, Lexer.NEQ -> Some Ast.Ne
  | 6, Lexer.LT -> Some Ast.Lt
  | 6, Lexer.LE -> Some Ast.Le
  | 6, Lexer.GT -> Some Ast.Gt
  | 6, Lexer.GE -> Some Ast.Ge
  | 7, Lexer.LSHIFT -> Some Ast.Shl
  | 7, Lexer.RSHIFT -> Some Ast.Shr
  | 8, Lexer.PLUS -> Some Ast.Add
  | 8, Lexer.MINUS -> Some Ast.Sub
  | 9, Lexer.STAR -> Some Ast.Mul
  | 9, Lexer.SLASH -> Some Ast.Div
  | 9, Lexer.PERCENT -> Some Ast.Mod
  | _ -> None

and parse_binary st level =
  if level > 9 then parse_unary st
  else begin
    let loc = cur_loc st in
    let lhs = ref (parse_binary st (level + 1)) in
    let continue = ref true in
    while !continue do
      match binop_at_level level (peek_token st) with
      | Some op ->
        advance st;
        let rhs = parse_binary st (level + 1) in
        lhs := Ast.mk_expr ~loc (Ast.Binop (op, !lhs, rhs))
      | None -> continue := false
    done;
    !lhs
  end

and parse_unary st =
  let loc = cur_loc st in
  match peek_token st with
  | Lexer.MINUS ->
    advance st;
    Ast.mk_expr ~loc (Ast.Unop (Ast.Neg, parse_unary st))
  | Lexer.TILDE ->
    advance st;
    Ast.mk_expr ~loc (Ast.Unop (Ast.Bit_not, parse_unary st))
  | Lexer.BANG ->
    advance st;
    Ast.mk_expr ~loc (Ast.Unop (Ast.Log_not, parse_unary st))
  | Lexer.STAR ->
    advance st;
    Ast.mk_expr ~loc (Ast.Deref (parse_unary st))
  | Lexer.AMP ->
    advance st;
    Ast.mk_expr ~loc (Ast.Addr_of (parse_unary st))
  | Lexer.PLUSPLUS ->
    advance st;
    let e = parse_unary st in
    incr_expr ~loc e Ast.Add
  | Lexer.MINUSMINUS ->
    advance st;
    let e = parse_unary st in
    incr_expr ~loc e Ast.Sub
  | Lexer.LPAREN
    when match peek_token2 st with
         | Lexer.KW kw -> type_keyword kw
         | _ -> false ->
    advance st;
    let ty = parse_type_prefix st in
    expect st Lexer.RPAREN "')'";
    Ast.mk_expr ~loc (Ast.Cast (ty, parse_unary st))
  | _ -> parse_postfix st

and incr_expr ~loc e op =
  let one = Ast.mk_expr ~loc (Ast.Const (1L, Ctypes.int_t)) in
  Ast.mk_expr ~loc (Ast.Assign (e, Ast.mk_expr ~loc (Ast.Binop (op, e, one))))

and parse_postfix st =
  let base = parse_primary st in
  let rec go e =
    let loc = cur_loc st in
    match peek_token st with
    | Lexer.LBRACKET ->
      advance st;
      let idx = parse_expr st in
      expect st Lexer.RBRACKET "']'";
      go (Ast.mk_expr ~loc (Ast.Index (e, idx)))
    | Lexer.PLUSPLUS ->
      advance st;
      go (incr_expr ~loc e Ast.Add)
    | Lexer.MINUSMINUS ->
      advance st;
      go (incr_expr ~loc e Ast.Sub)
    | _ -> e
  in
  go base

and parse_primary st =
  let loc = cur_loc st in
  match peek_token st with
  | Lexer.INT (v, suffix) ->
    advance st;
    let ty =
      match suffix with
      | `Unsigned -> Ctypes.uint_t
      | `Long -> Ctypes.long_t
      | `Unsigned_long -> Ctypes.ulong_t
      | `Plain ->
        if Int64.compare v (Int64.of_int32 Int32.max_int) <= 0 then
          Ctypes.int_t
        else Ctypes.long_t
    in
    Ast.mk_expr ~loc (Ast.Const (v, ty))
  | Lexer.KW "true" ->
    advance st;
    Ast.mk_expr ~loc (Ast.Const (1L, Ctypes.bool_t))
  | Lexer.KW "false" ->
    advance st;
    Ast.mk_expr ~loc (Ast.Const (0L, Ctypes.bool_t))
  | Lexer.KW "recv" ->
    advance st;
    expect st Lexer.LPAREN "'('";
    let ch = expect_ident st in
    expect st Lexer.RPAREN "')'";
    Ast.mk_expr ~loc (Ast.Chan_recv ch)
  | Lexer.ID name ->
    advance st;
    if peek_token st = Lexer.LPAREN then begin
      advance st;
      let args = ref [] in
      if peek_token st <> Lexer.RPAREN then begin
        args := [ parse_expr st ];
        while peek_token st = Lexer.COMMA do
          advance st;
          args := parse_expr st :: !args
        done
      end;
      expect st Lexer.RPAREN "')'";
      Ast.mk_expr ~loc (Ast.Call (name, List.rev !args))
    end
    else Ast.mk_expr ~loc (Ast.Var name)
  | Lexer.LPAREN ->
    advance st;
    let e = parse_expr st in
    expect st Lexer.RPAREN "')'";
    e
  | _ -> fail st "expected expression"

(* --- statements --- *)

let parse_int_literal st =
  match peek_token st with
  | Lexer.INT (v, _) ->
    advance st;
    Int64.to_int v
  | Lexer.MINUS ->
    advance st;
    (match peek_token st with
    | Lexer.INT (v, _) ->
      advance st;
      -Int64.to_int v
    | _ -> fail st "expected integer literal")
  | _ -> fail st "expected integer literal"

let rec parse_stmt st =
  let loc = cur_loc st in
  match peek_token st with
  | Lexer.LBRACE -> Ast.mk_stmt ~loc (Ast.Block (parse_block st))
  | Lexer.KW "if" ->
    advance st;
    expect st Lexer.LPAREN "'('";
    let cond = parse_expr st in
    expect st Lexer.RPAREN "')'";
    let then_b = parse_stmt_as_block st in
    let else_b =
      if peek_token st = Lexer.KW "else" then begin
        advance st;
        parse_stmt_as_block st
      end
      else []
    in
    Ast.mk_stmt ~loc (Ast.If (cond, then_b, else_b))
  | Lexer.KW "while" ->
    advance st;
    expect st Lexer.LPAREN "'('";
    let cond = parse_expr st in
    expect st Lexer.RPAREN "')'";
    Ast.mk_stmt ~loc (Ast.While (cond, parse_stmt_as_block st))
  | Lexer.KW "do" ->
    advance st;
    let body = parse_stmt_as_block st in
    expect st (Lexer.KW "while") "'while'";
    expect st Lexer.LPAREN "'('";
    let cond = parse_expr st in
    expect st Lexer.RPAREN "')'";
    expect st Lexer.SEMI "';'";
    Ast.mk_stmt ~loc (Ast.Do_while (body, cond))
  | Lexer.KW "for" ->
    advance st;
    expect st Lexer.LPAREN "'('";
    let init =
      if peek_token st = Lexer.SEMI then begin
        advance st;
        None
      end
      else if starts_type st then Some (parse_decl_stmt st)
      else begin
        let e = parse_expr st in
        expect st Lexer.SEMI "';'";
        Some (Ast.mk_stmt ~loc (Ast.Expr e))
      end
    in
    let cond =
      if peek_token st = Lexer.SEMI then None else Some (parse_expr st)
    in
    expect st Lexer.SEMI "';'";
    let step =
      if peek_token st = Lexer.RPAREN then None else Some (parse_expr st)
    in
    expect st Lexer.RPAREN "')'";
    Ast.mk_stmt ~loc (Ast.For (init, cond, step, parse_stmt_as_block st))
  | Lexer.KW "return" ->
    advance st;
    let value =
      if peek_token st = Lexer.SEMI then None else Some (parse_expr st)
    in
    expect st Lexer.SEMI "';'";
    Ast.mk_stmt ~loc (Ast.Return value)
  | Lexer.KW "break" ->
    advance st;
    expect st Lexer.SEMI "';'";
    Ast.mk_stmt ~loc Ast.Break
  | Lexer.KW "continue" ->
    advance st;
    expect st Lexer.SEMI "';'";
    Ast.mk_stmt ~loc Ast.Continue
  | Lexer.KW "delay" ->
    advance st;
    expect st Lexer.SEMI "';'";
    Ast.mk_stmt ~loc Ast.Delay
  | Lexer.KW "par" ->
    advance st;
    expect st Lexer.LBRACE "'{'";
    let branches = ref [] in
    while peek_token st <> Lexer.RBRACE do
      branches := parse_stmt_as_block st :: !branches
    done;
    advance st;
    Ast.mk_stmt ~loc (Ast.Par (List.rev !branches))
  | Lexer.KW "send" ->
    advance st;
    expect st Lexer.LPAREN "'('";
    let ch = expect_ident st in
    expect st Lexer.COMMA "','";
    let value = parse_expr st in
    expect st Lexer.RPAREN "')'";
    expect st Lexer.SEMI "';'";
    Ast.mk_stmt ~loc (Ast.Chan_send (ch, value))
  | Lexer.KW "constrain" ->
    advance st;
    expect st Lexer.LPAREN "'('";
    let min_cycles = parse_int_literal st in
    expect st Lexer.COMMA "','";
    let max_cycles = parse_int_literal st in
    expect st Lexer.RPAREN "')'";
    let body = parse_stmt_as_block st in
    Ast.mk_stmt ~loc (Ast.Constrain (min_cycles, max_cycles, body))
  | Lexer.KW kw when type_keyword kw -> parse_decl_stmt st
  | Lexer.SEMI ->
    advance st;
    Ast.mk_stmt ~loc (Ast.Block [])
  | _ ->
    let e = parse_expr st in
    expect st Lexer.SEMI "';'";
    Ast.mk_stmt ~loc (Ast.Expr e)

and parse_decl_stmt st =
  let loc = cur_loc st in
  let ty = parse_type_prefix st in
  let name = expect_ident st in
  let ty =
    if peek_token st = Lexer.LBRACKET then begin
      advance st;
      let n = parse_int_literal st in
      expect st Lexer.RBRACKET "']'";
      Ctypes.Array (ty, n)
    end
    else ty
  in
  let init =
    if peek_token st = Lexer.ASSIGN then begin
      advance st;
      Some (parse_expr st)
    end
    else None
  in
  expect st Lexer.SEMI "';'";
  Ast.mk_stmt ~loc (Ast.Decl (ty, name, init))

and parse_block st =
  expect st Lexer.LBRACE "'{'";
  let stmts = ref [] in
  while peek_token st <> Lexer.RBRACE do
    stmts := parse_stmt st :: !stmts
  done;
  advance st;
  List.rev !stmts

and parse_stmt_as_block st =
  if peek_token st = Lexer.LBRACE then parse_block st else [ parse_stmt st ]

(* --- top level --- *)

let parse_initializer_list st =
  expect st Lexer.LBRACE "'{'";
  let values = ref [ Int64.of_int (parse_int_literal st) ] in
  while peek_token st = Lexer.COMMA do
    advance st;
    values := Int64.of_int (parse_int_literal st) :: !values
  done;
  expect st Lexer.RBRACE "'}'";
  List.rev !values

let parse_top_level st (globals, chans, funcs) =
  if peek_token st = Lexer.KW "chan" then begin
    advance st;
    let ty = parse_type_prefix st in
    let name = expect_ident st in
    expect st Lexer.SEMI "';'";
    (globals, { Ast.c_name = name; c_ty = ty } :: chans, funcs)
  end
  else begin
    let ty = parse_type_prefix st in
    let name = expect_ident st in
    match peek_token st with
    | Lexer.LPAREN ->
      advance st;
      let params = ref [] in
      if peek_token st <> Lexer.RPAREN then begin
        (match peek_token st with
        | Lexer.KW "void" when peek_token2 st = Lexer.RPAREN -> advance st
        | _ ->
          let parse_param () =
            let pty = parse_type_prefix st in
            let pname = expect_ident st in
            let pty =
              if peek_token st = Lexer.LBRACKET then begin
                advance st;
                let n =
                  if peek_token st = Lexer.RBRACKET then 0
                  else parse_int_literal st
                in
                expect st Lexer.RBRACKET "']'";
                if n = 0 then Ctypes.Pointer pty else Ctypes.Array (pty, n)
              end
              else pty
            in
            params := (pty, pname) :: !params
          in
          parse_param ();
          while peek_token st = Lexer.COMMA do
            advance st;
            parse_param ()
          done)
      end;
      expect st Lexer.RPAREN "')'";
      if peek_token st = Lexer.SEMI then begin
        (* Forward declaration: recorded nowhere, bodies carry the truth. *)
        advance st;
        (globals, chans, funcs)
      end
      else begin
        let body = parse_block st in
        let func =
          { Ast.f_name = name; f_ret = ty; f_params = List.rev !params;
            f_body = body }
        in
        (globals, chans, func :: funcs)
      end
    | Lexer.LBRACKET ->
      advance st;
      let n = parse_int_literal st in
      expect st Lexer.RBRACKET "']'";
      let init =
        if peek_token st = Lexer.ASSIGN then begin
          advance st;
          Some (parse_initializer_list st)
        end
        else None
      in
      expect st Lexer.SEMI "';'";
      let g =
        { Ast.g_name = name; g_ty = Ctypes.Array (ty, n); g_init = init }
      in
      (g :: globals, chans, funcs)
    | _ ->
      let init =
        if peek_token st = Lexer.ASSIGN then begin
          advance st;
          Some [ Int64.of_int (parse_int_literal st) ]
        end
        else None
      in
      expect st Lexer.SEMI "';'";
      let g = { Ast.g_name = name; g_ty = ty; g_init = init } in
      (g :: globals, chans, funcs)
  end

(** Parse a complete translation unit. *)
let parse_program src =
  let st = { toks = Array.of_list (Lexer.tokenize src); pos = 0 } in
  let rec go acc =
    if peek_token st = Lexer.EOF then acc else go (parse_top_level st acc)
  in
  let globals, chans, funcs = go ([], [], []) in
  { Ast.globals = List.rev globals;
    chans = List.rev chans;
    funcs = List.rev funcs }

(** Parse a single expression (used by tests and the Ocapi examples). *)
let parse_expression src =
  let st = { toks = Array.of_list (Lexer.tokenize src); pos = 0 } in
  let e = parse_expr st in
  if peek_token st <> Lexer.EOF then fail st "trailing tokens";
  e
