(* Wall-style instruction-level parallelism limit study — experiment E1.

   The paper: "it seems that ILP beyond about five simultaneous
   instructions is unlikely due to fundamental limits [25, 26]" (Wall,
   "Limits of instruction-level parallelism").

   Following Wall's methodology at our scale: take the *dynamic* trace of
   a program (from the CIR interpreter), then measure how fast an ideal
   machine could have executed it under varying assumptions:

     - window size: only the next W not-yet-issued instructions are
       candidates each cycle (W = infinity is the dataflow limit);
     - register renaming: with renaming, only true (RAW) dependences
       constrain issue; without, WAR/WAW hazards on architectural
       registers serialize too;
     - control: 'perfect' speculation ignores block boundaries (the trace
       is the executed path); 'none' refuses to issue an instruction until
       the branch ending the previous basic block has resolved.

   IPC = trace length / cycles. *)

type config = {
  window : int; (* max lookahead, in instructions *)
  renaming : bool;
  speculation : [ `Perfect | `None ];
}

type measurement = {
  config : config;
  instructions : int;
  cycles : int;
  ipc : float;
}

(* Issue-time simulation over the dynamic trace.  For each instruction we
   compute the earliest cycle it can issue; the window constraint says
   instruction k cannot issue before instruction (k - W) has issued (the
   window has slid past it). *)
let measure (trace : (int * Cir.instr) list) (config : config) : measurement =
  let instrs = Array.of_list trace in
  let n = Array.length instrs in
  let issue = Array.make (max n 1) 0 in
  let reg_ready = Hashtbl.create 256 in (* reg -> cycle its value is ready *)
  let reg_last_issue = Hashtbl.create 256 in (* for WAR/WAW without renaming *)
  let mem_ready = Hashtbl.create 16 in (* region -> cycle after last store *)
  let mem_reads = Hashtbl.create 16 in (* region -> latest read issue *)
  let branch_resolved = ref 0 in (* cycle the last block's branch resolved *)
  let prev_block = ref (-1) in
  let max_cycle = ref 0 in
  for k = 0 to n - 1 do
    let block, instr = instrs.(k) in
    let ready r =
      Option.value (Hashtbl.find_opt reg_ready r) ~default:0
    in
    let t = ref 0 in
    (* RAW *)
    List.iter (fun r -> t := max !t (ready r)) (Cir.uses_of instr);
    (* WAR/WAW on architectural registers, unless renamed away *)
    if not config.renaming then begin
      match Cir.def_of instr with
      | Some d ->
        t := max !t (Option.value (Hashtbl.find_opt reg_last_issue d) ~default:0)
      | None -> ()
    end;
    (* memory ordering *)
    (match Cir.memory_access instr with
    | Some (region, `Read) ->
      t := max !t (Option.value (Hashtbl.find_opt mem_ready region) ~default:0)
    | Some (region, `Write) ->
      t := max !t (Option.value (Hashtbl.find_opt mem_ready region) ~default:0);
      t := max !t (Option.value (Hashtbl.find_opt mem_reads region) ~default:0)
    | None -> ());
    (* control: without speculation, wait for the previous block's branch *)
    if config.speculation = `None && block <> !prev_block then begin
      branch_resolved := !max_cycle;
      prev_block := block
    end;
    if config.speculation = `None then t := max !t !branch_resolved;
    (* finite window: at most W instructions can be in flight, so we
       cannot issue until the instruction W places earlier has issued and
       vacated its slot (hence the +1; W=1 degenerates to one instruction
       per cycle). *)
    if config.window < max_int && k >= config.window then
      t := max !t (issue.(k - config.window) + 1);
    issue.(k) <- !t;
    let finish = !t + 1 in (* unit latency *)
    (match Cir.def_of instr with
    | Some d ->
      Hashtbl.replace reg_ready d finish;
      Hashtbl.replace reg_last_issue d !t
    | None -> ());
    (match Cir.memory_access instr with
    | Some (region, `Write) -> Hashtbl.replace mem_ready region finish
    | Some (region, `Read) ->
      Hashtbl.replace mem_reads region
        (max !t (Option.value (Hashtbl.find_opt mem_reads region) ~default:0))
    | None -> ());
    if finish > !max_cycle then max_cycle := finish
  done;
  let cycles = max 1 !max_cycle in
  { config;
    instructions = n;
    cycles;
    ipc = float_of_int n /. float_of_int cycles }

(** The standard sweep: window sizes with and without renaming, perfect
    speculation (Wall's upper-bound setup), plus a no-speculation row. *)
let sweep ?(windows = [ 1; 2; 4; 8; 16; 32; 64; 128; 256 ]) trace =
  let perfect =
    List.concat_map
      (fun w ->
        [ measure trace { window = w; renaming = true; speculation = `Perfect };
          measure trace { window = w; renaming = false; speculation = `Perfect } ])
      windows
  in
  let no_spec =
    measure trace { window = max_int; renaming = true; speculation = `None }
  in
  let dataflow =
    measure trace { window = max_int; renaming = true; speculation = `Perfect }
  in
  (perfect, no_spec, dataflow)

(** Dynamic trace of a lowered function on given arguments. *)
let trace_of (func : Cir.func) ~args =
  let outcome =
    Cir_interp.run ~record_trace:true func
      ~args:(List.map (Bitvec.of_int ~width:64) args)
  in
  outcome.Cir_interp.trace
