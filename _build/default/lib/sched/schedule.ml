(* Operation scheduling for behavioural synthesis.

   Implements the classic repertoire: ASAP, ALAP, and resource-constrained
   list scheduling with operator chaining under a cycle-time budget.  A
   schedule assigns each instruction of a basic block to a control step;
   the FSMD backends then emit one FSM state per step.

   Correctness contract with the FSMD simulator/elaborator (rtl/):
     - instructions placed in the same step keep their original order and
       see each other's results as wires (so RAW chains within a step are
       legal when the delay budget allows);
     - a load may not be placed in the same or an earlier step than a
       store it depends on (synchronous-write memories) unless
       [mem_forwarding] is set (register-file memories, as in
       Transmogrifier C's register-rich FPGA target);
     - WAR/WAW edges only require non-decreasing steps, since original
       order is preserved within a step. *)

type resource_class = Adder | Multiplier | Divider | Shifter | Logic | Mem

let class_of_instr = function
  | Cir.I_bin { op; _ } -> (
    match op with
    | Netlist.B_add | Netlist.B_sub | Netlist.B_ult | Netlist.B_ule
    | Netlist.B_slt | Netlist.B_sle -> Adder
    | Netlist.B_mul -> Multiplier
    | Netlist.B_udiv | Netlist.B_urem | Netlist.B_sdiv | Netlist.B_srem ->
      Divider
    | Netlist.B_shl | Netlist.B_lshr | Netlist.B_ashr -> Shifter
    | Netlist.B_and | Netlist.B_or | Netlist.B_xor | Netlist.B_eq
    | Netlist.B_ne -> Logic)
  | Cir.I_un { op = Netlist.U_neg; _ } -> Adder
  | Cir.I_un { op = Netlist.U_not | Netlist.U_reduce_or; _ } -> Logic
  | Cir.I_mov _ | Cir.I_cast _ | Cir.I_mux _ -> Logic
  | Cir.I_load _ | Cir.I_store _ -> Mem

type resources = {
  adders : int option; (* None = unconstrained *)
  multipliers : int option;
  dividers : int option;
  shifters : int option;
  mem_read_ports : int; (* per region, per step *)
  mem_write_ports : int;
  chain_budget : float; (* max combinational delay per step; infinity ok *)
  mem_forwarding : bool; (* same-step store->load allowed (register file) *)
}

let unconstrained =
  { adders = None; multipliers = None; dividers = None; shifters = None;
    mem_read_ports = max_int; mem_write_ports = max_int;
    chain_budget = infinity; mem_forwarding = false }

(** A typical datapath allocation: used as the default by Bach C. *)
let default_allocation =
  { adders = Some 2; multipliers = Some 1; dividers = Some 1;
    shifters = Some 1; mem_read_ports = 1; mem_write_ports = 1;
    chain_budget = 20.; mem_forwarding = false }

let instr_delay func instr =
  let w_of = function
    | Cir.O_reg r -> Cir.reg_width func r
    | Cir.O_imm bv -> Bitvec.width bv
  in
  match instr with
  | Cir.I_bin { op; a; b; _ } ->
    (Area.binop_cost op (max (w_of a) (w_of b))).Area.delay
  | Cir.I_un { op; a; _ } -> (Area.unop_cost op (w_of a)).Area.delay
  | Cir.I_mux _ -> 2.
  | Cir.I_mov _ | Cir.I_cast _ -> 0.
  | Cir.I_load { region; _ } ->
    let m = func.Cir.fn_regions.(region) in
    Area.flog2 m.Cir.rg_words +. 2.
  | Cir.I_store _ -> 1.

type schedule = {
  steps : int array; (* control step of each instruction *)
  num_steps : int;
  step_delay : float array; (* accumulated chained delay per step *)
}

(* Count how many instances of a constrained class fit per step; at least
   one, or scheduling could never make progress. *)
let capacity resources cls =
  let at_least_one = function
    | Some k -> max 1 k
    | None -> max_int
  in
  match cls with
  | Adder -> at_least_one resources.adders
  | Multiplier -> at_least_one resources.multipliers
  | Divider -> at_least_one resources.dividers
  | Shifter -> at_least_one resources.shifters
  | Logic -> max_int
  | Mem -> max_int (* per-region ports handled separately *)

(** Resource-constrained list scheduling with chaining of [instrs] (one
    basic block).  Priority is longest path to a sink. *)
let list_schedule (func : Cir.func) (resources : resources)
    (instrs : Cir.instr list) : schedule =
  let g = Dep.of_instrs instrs in
  let n = Array.length g.Dep.instrs in
  if n = 0 then { steps = [||]; num_steps = 0; step_delay = [||] }
  else begin
    (* priority: height in the dependence DAG *)
    let height = Array.make n 1 in
    for i = n - 1 downto 0 do
      List.iter
        (fun (s, _) -> if height.(s) + 1 > height.(i) then height.(i) <- height.(s) + 1)
        g.Dep.succs.(i)
    done;
    let steps = Array.make n (-1) in
    let arrival = Array.make n 0. in (* completion time within its step *)
    let scheduled = ref 0 in
    let step = ref 0 in
    let step_delays = ref [] in
    while !scheduled < n do
      (* per-step usage *)
      let usage = Hashtbl.create 8 in
      let used cls =
        match Hashtbl.find_opt usage cls with Some k -> k | None -> 0
      in
      let mem_usage = Hashtbl.create 8 in (* (region, dir) -> count *)
      let mem_used key =
        match Hashtbl.find_opt mem_usage key with Some k -> k | None -> 0
      in
      let placed_this_step = ref true in
      while !placed_this_step do
        placed_this_step := false;
        (* candidates in priority order *)
        let candidates =
          List.init n Fun.id
          |> List.filter (fun i ->
                 steps.(i) = -1
                 && List.for_all
                      (fun (p, kind) ->
                        steps.(p) <> -1
                        &&
                        match kind with
                        | Dep.Raw -> steps.(p) <= !step
                        | Dep.War | Dep.Waw -> steps.(p) <= !step
                        | Dep.Mem ->
                          (* store->load needs a step boundary unless the
                             memory forwards; other mem edges only order *)
                          let store_to_load =
                            (match Cir.memory_access g.Dep.instrs.(p) with
                            | Some (_, `Write) -> true
                            | Some (_, `Read) | None -> false)
                            &&
                            match Cir.memory_access g.Dep.instrs.(i) with
                            | Some (_, `Read) -> true
                            | Some (_, `Write) | None -> false
                          in
                          if store_to_load && not resources.mem_forwarding
                          then steps.(p) < !step
                          else steps.(p) <= !step)
                      g.Dep.preds.(i))
          |> List.sort (fun a b -> compare height.(b) height.(a))
        in
        List.iter
          (fun i ->
            if steps.(i) = -1 then begin
              let instr = g.Dep.instrs.(i) in
              let cls = class_of_instr instr in
              (* earliest start within this step given chained RAW deps *)
              let ready_time =
                List.fold_left
                  (fun acc (p, kind) ->
                    match kind with
                    | Dep.Raw when steps.(p) = !step ->
                      Float.max acc arrival.(p)
                    | Dep.Raw | Dep.War | Dep.Waw | Dep.Mem -> acc)
                  0. g.Dep.preds.(i)
              in
              let finish = ready_time +. instr_delay func instr in
              let fits_chain = finish <= resources.chain_budget in
              let fits_resource = used cls < capacity resources cls in
              let fits_mem =
                match Cir.memory_access instr with
                | Some (region, `Read) ->
                  mem_used (region, `Read) < max 1 resources.mem_read_ports
                | Some (region, `Write) ->
                  mem_used (region, `Write) < max 1 resources.mem_write_ports
                | None -> true
              in
              (* an op too slow for any budget still gets a step alone *)
              let oversized = instr_delay func instr > resources.chain_budget in
              let chain_ok = fits_chain || (oversized && ready_time = 0.) in
              if chain_ok && fits_resource && fits_mem then begin
                steps.(i) <- !step;
                arrival.(i) <- finish;
                Hashtbl.replace usage cls (used cls + 1);
                (match Cir.memory_access instr with
                | Some (region, dir) ->
                  Hashtbl.replace mem_usage (region, dir)
                    (mem_used (region, dir) + 1)
                | None -> ());
                incr scheduled;
                placed_this_step := true
              end
            end)
          candidates
      done;
      let max_arrival =
        Array.to_list arrival
        |> List.mapi (fun i a -> if steps.(i) = !step then a else 0.)
        |> List.fold_left Float.max 0.
      in
      step_delays := max_arrival :: !step_delays;
      incr step
    done;
    (* drop trailing empty steps (can happen if last iteration placed none) *)
    let num_steps = Array.fold_left (fun acc s -> max acc (s + 1)) 0 steps in
    { steps;
      num_steps;
      step_delay =
        Array.of_list (List.rev !step_delays) |> fun a ->
        Array.sub a 0 (min num_steps (Array.length a)) }
  end

(** ASAP schedule: list scheduling with no resource limits. *)
let asap func instrs = list_schedule func unconstrained instrs

(** ALAP schedule derived from ASAP by pushing every op as late as its
    successors allow within the ASAP makespan.  Uses the same dependence
    model as the unconstrained ASAP: RAW chains may share a step; only
    store->load pairs need a step boundary. *)
let alap func instrs =
  let g = Dep.of_instrs instrs in
  let base = asap func instrs in
  let n = Array.length g.Dep.instrs in
  let latest = Array.make n (max 0 (base.num_steps - 1)) in
  let is_store i =
    match Cir.memory_access g.Dep.instrs.(i) with
    | Some (_, `Write) -> true
    | Some (_, `Read) | None -> false
  and is_load i =
    match Cir.memory_access g.Dep.instrs.(i) with
    | Some (_, `Read) -> true
    | Some (_, `Write) | None -> false
  in
  for i = n - 1 downto 0 do
    List.iter
      (fun (s, kind) ->
        let bound =
          match kind with
          | Dep.Mem when is_store i && is_load s -> latest.(s) - 1
          | Dep.Raw | Dep.Mem | Dep.War | Dep.Waw -> latest.(s)
        in
        if bound < latest.(i) then latest.(i) <- max 0 bound)
      g.Dep.succs.(i)
  done;
  { base with steps = latest }

(** Slack (ALAP - ASAP step) of each instruction: zero-slack ops are on the
    critical path; used by E7's exploration report. *)
let slack func instrs =
  let a = asap func instrs and l = alap func instrs in
  Array.init (Array.length a.steps) (fun i -> l.steps.(i) - a.steps.(i))

(** Parallelism profile: how many operations issue in each step. *)
let ops_per_step schedule =
  let counts = Array.make (max 1 schedule.num_steps) 0 in
  Array.iter
    (fun s -> if s >= 0 then counts.(s) <- counts.(s) + 1)
    schedule.steps;
  counts
