(* HardwareC-style min/max timing constraints — experiment E7.

   The paper: "HardwareC supports timing constraints such as 'these three
   statements must execute in two cycles'.  While such constraints can be
   subtle for the designer and challenging for the compiler, they allow
   easier design-space exploration."

   A constraint covers a contiguous instruction range of one basic block
   (lowering enforces the straight-line shape) and demands that the range
   occupy between [min_cycles] and [max_cycles] control steps.  Checking a
   schedule against constraints is direct; satisfying a max constraint is
   done by re-scheduling with more resources / a larger chain budget, and
   min constraints by padding states — both exposed here so the HardwareC
   backend and the E7 exploration loop share them. *)

type t = {
  block : int;
  first : int; (* instruction index within the block *)
  last : int;
  min_cycles : int;
  max_cycles : int;
}

let of_lowering (constraints : (int * int * int * int * int) list) : t list =
  List.map
    (fun (block, first, last, min_cycles, max_cycles) ->
      { block; first; last; min_cycles; max_cycles })
    constraints

type status = {
  constraint_ : t;
  actual_cycles : int;
  satisfied : bool;
  slack : int; (* max_cycles - actual (negative = violated) *)
}

(** Number of control steps a schedule assigns to instructions
    [first..last] of the scheduled block. *)
let span (schedule : Schedule.schedule) ~first ~last =
  if last < first then 0
  else begin
    let lo = ref max_int and hi = ref min_int in
    for i = first to min last (Array.length schedule.Schedule.steps - 1) do
      let s = schedule.Schedule.steps.(i) in
      if s < !lo then lo := s;
      if s > !hi then hi := s
    done;
    if !hi < !lo then 0 else !hi - !lo + 1
  end

(** Check the constraints that apply to [block]'s schedule. *)
let check (constraints : t list) ~block (schedule : Schedule.schedule) :
    status list =
  List.filter_map
    (fun c ->
      if c.block <> block then None
      else begin
        let actual = span schedule ~first:c.first ~last:c.last in
        Some
          { constraint_ = c;
            actual_cycles = actual;
            satisfied = actual >= c.min_cycles && actual <= c.max_cycles;
            slack = c.max_cycles - actual }
      end)
    constraints

(** Search the resource lattice for the cheapest allocation whose schedule
    meets all max constraints of [instrs] (one block).  Returns the
    allocation, the schedule, and the exploration trail — the
    "design-space exploration" the paper credits constraints with
    enabling. *)
let explore (func : Cir.func) (constraints : t list) ~block
    (instrs : Cir.instr list) =
  let candidates =
    (* increasing cost: more functional units and looser chaining *)
    [ ("1 adder, 1 mul, chain 10",
       { Schedule.adders = Some 1; multipliers = Some 1; dividers = Some 1;
         shifters = Some 1; mem_read_ports = 1; mem_write_ports = 1;
         chain_budget = 10.; mem_forwarding = false });
      ("2 adders, 1 mul, chain 20",
       { Schedule.adders = Some 2; multipliers = Some 1; dividers = Some 1;
         shifters = Some 1; mem_read_ports = 1; mem_write_ports = 1;
         chain_budget = 20.; mem_forwarding = false });
      ("2 adders, 2 muls, chain 30",
       { Schedule.adders = Some 2; multipliers = Some 2; dividers = Some 1;
         shifters = Some 2; mem_read_ports = 2; mem_write_ports = 1;
         chain_budget = 30.; mem_forwarding = false });
      ("4 adders, 4 muls, chain 60",
       { Schedule.adders = Some 4; multipliers = Some 4; dividers = Some 2;
         shifters = Some 4; mem_read_ports = 2; mem_write_ports = 2;
         chain_budget = 60.; mem_forwarding = false });
      ("unconstrained, full chaining", Schedule.unconstrained) ]
  in
  let trail = ref [] in
  let found =
    List.find_opt
      (fun (label, resources) ->
        let schedule = Schedule.list_schedule func resources instrs in
        let statuses = check constraints ~block schedule in
        let ok =
          List.for_all
            (fun s -> s.actual_cycles <= s.constraint_.max_cycles)
            statuses
        in
        trail := (label, schedule.Schedule.num_steps, ok) :: !trail;
        ok)
      candidates
  in
  (found, List.rev !trail)
