lib/sched/constrain.ml: Array Cir List Schedule
