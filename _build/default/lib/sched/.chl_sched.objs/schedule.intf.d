lib/sched/schedule.mli: Cir
