lib/sched/ilp_limits.mli: Cir
