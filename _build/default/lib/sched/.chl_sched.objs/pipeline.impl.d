lib/sched/pipeline.ml: Array Cfg Cir Dep Fun Hashtbl List Netlist Option Schedule
