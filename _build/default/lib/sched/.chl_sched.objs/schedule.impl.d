lib/sched/schedule.ml: Area Array Bitvec Cir Dep Float Fun Hashtbl List Netlist
