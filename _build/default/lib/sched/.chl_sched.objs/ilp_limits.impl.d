lib/sched/ilp_limits.ml: Array Bitvec Cir Cir_interp Hashtbl List Option
