lib/sched/pipeline.mli: Cir Schedule
