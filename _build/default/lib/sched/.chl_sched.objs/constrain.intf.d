lib/sched/constrain.mli: Cir Schedule
