(** Wall-style instruction-level parallelism limit study — experiment E1.

    Measures how fast an ideal machine could have executed a program's
    *dynamic* trace under varying window size, register renaming and
    speculation assumptions; the paper (citing Wall) expects IPC to
    saturate in the single digits. *)

type config = {
  window : int;  (** instructions in flight at once; [max_int] = infinite *)
  renaming : bool;  (** with renaming only RAW dependences constrain *)
  speculation : [ `Perfect | `None ];
      (** [`Perfect] follows the executed path; [`None] stalls each basic
          block until the previous block's branch resolved *)
}

type measurement = {
  config : config;
  instructions : int;
  cycles : int;
  ipc : float;
}

val measure : (int * Cir.instr) list -> config -> measurement
(** Issue-time simulation of a dynamic trace (block id, instruction). *)

val sweep :
  ?windows:int list -> (int * Cir.instr) list ->
  measurement list * measurement * measurement
(** The standard study: per-window measurements with and without renaming
    (perfect speculation), plus the no-speculation and pure-dataflow
    bounds. *)

val trace_of : Cir.func -> args:int list -> (int * Cir.instr) list
(** The dynamic trace of a lowered function on given arguments. *)
