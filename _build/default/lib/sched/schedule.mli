(** Operation scheduling for behavioural synthesis: ASAP, ALAP, and
    resource-constrained list scheduling with operator chaining under a
    cycle-time budget.

    Contract with the FSMD backends: instructions placed in the same step
    keep their original order and see each other's results as wires;
    a load may not share a step with (or precede) a store it depends on
    unless [mem_forwarding] models register-file memories; WAR/WAW edges
    only require non-decreasing steps. *)

type resource_class = Adder | Multiplier | Divider | Shifter | Logic | Mem

val class_of_instr : Cir.instr -> resource_class

type resources = {
  adders : int option;  (** [None] = unconstrained *)
  multipliers : int option;
  dividers : int option;
  shifters : int option;
  mem_read_ports : int;  (** per region, per step *)
  mem_write_ports : int;
  chain_budget : float;  (** max chained delay per step; [infinity] ok *)
  mem_forwarding : bool;  (** same-step store->load allowed *)
}

val unconstrained : resources

val default_allocation : resources
(** A typical datapath: 2 adders, 1 multiplier, 1 divider, 1 shifter, one
    read and one write port per region, chain budget 20. *)

val capacity : resources -> resource_class -> int
(** Units of a class available per step (at least 1; [max_int] when
    unconstrained). *)

val instr_delay : Cir.func -> Cir.instr -> float
(** Combinational delay of one instruction under the Area model. *)

type schedule = {
  steps : int array;  (** control step of each instruction *)
  num_steps : int;
  step_delay : float array;  (** accumulated chained delay per step *)
}

val list_schedule : Cir.func -> resources -> Cir.instr list -> schedule
(** Priority list scheduling (longest path to a sink) of one basic block
    under [resources]. *)

val asap : Cir.func -> Cir.instr list -> schedule
(** List scheduling with no resource limits. *)

val alap : Cir.func -> Cir.instr list -> schedule
(** Latest legal steps within the ASAP makespan, same dependence model as
    the unconstrained ASAP. *)

val slack : Cir.func -> Cir.instr list -> int array
(** ALAP - ASAP step per instruction; zero-slack operations are on the
    critical path. *)

val ops_per_step : schedule -> int array
(** Parallelism profile: operations issued in each step. *)
