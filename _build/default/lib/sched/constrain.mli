(** HardwareC-style min/max timing constraints — experiment E7.

    A constraint covers a contiguous instruction range of one basic block
    (lowering enforces the straight-line shape) and demands the range
    occupy between [min_cycles] and [max_cycles] control steps. *)

type t = {
  block : int;
  first : int;  (** first instruction index within the block *)
  last : int;
  min_cycles : int;
  max_cycles : int;
}

val of_lowering : (int * int * int * int * int) list -> t list
(** From [Lower.result.constraints]. *)

type status = {
  constraint_ : t;
  actual_cycles : int;
  satisfied : bool;
  slack : int;  (** max_cycles - actual; negative = violated *)
}

val span : Schedule.schedule -> first:int -> last:int -> int
(** Control steps a schedule assigns to an instruction range. *)

val check : t list -> block:int -> Schedule.schedule -> status list
(** The constraints applying to [block], evaluated on its schedule. *)

val explore :
  Cir.func -> t list -> block:int -> Cir.instr list ->
  (string * Schedule.resources) option * (string * int * bool) list
(** Walk a ladder of allocations (cheapest first) until the block's max
    constraints hold; returns the chosen allocation and the exploration
    trail (label, steps, met?). *)
