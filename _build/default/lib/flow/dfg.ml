(* Asynchronous dataflow circuits in the style of CASH's Pegasus IR
   [Budiu & Goldstein, FPL 2002].

   The paper: "Budiu et al.'s CASH is unique because it generates
   asynchronous hardware.  It identifies instruction-level parallelism in
   ANSI C and generates asynchronous dataflow circuits."

   CASH's Pegasus representation maps SSA directly onto hardware: each SSA
   definition is an operator node; phi nodes at join points become merge
   (mu) nodes; values leaving a conditional region pass through steer
   (eta) nodes gated by the branch predicate; loop back edges circulate
   tokens through mu nodes.  We build exactly that structure from our SSA
   form — the node inventory and its area estimate are the static view of
   the circuit; the timed token simulation lives in asim.ml. *)

type node_kind =
  | N_op of string (* operator mnemonic *)
  | N_const
  | N_param of string
  | N_merge (* mu: phi at a join/loop header *)
  | N_steer (* eta: value gated by a predicate (branch successor) *)
  | N_load of string
  | N_store of string
  | N_return

type node = {
  id : int;
  kind : node_kind;
  width : int;
  inputs : int list; (* producer node ids *)
}

type t = {
  nodes : node array;
  ssa : Ssa.t;
}

(** Build the Pegasus-style circuit from an SSA function. *)
let of_ssa (ssa : Ssa.t) : t =
  let func = ssa.Ssa.func in
  let nodes = ref [] in
  let next_id = ref 0 in
  let reg_node = Hashtbl.create 64 in (* ssa reg -> node id *)
  let fresh kind width inputs =
    let id = !next_id in
    incr next_id;
    nodes := { id; kind; width; inputs } :: !nodes;
    id
  in
  let node_of_reg r =
    match Hashtbl.find_opt reg_node r with
    | Some id -> id
    | None ->
      (* parameter / global / use-before-def: a source node *)
      let id =
        fresh (N_param (Printf.sprintf "r%d" r)) (Cir.reg_width func r) []
      in
      Hashtbl.replace reg_node r id;
      id
  in
  let node_of_operand = function
    | Cir.O_imm bv -> fresh N_const (Bitvec.width bv) []
    | Cir.O_reg r -> node_of_reg r
  in
  (* pre-seed parameters *)
  List.iter
    (fun (name, r) ->
      Hashtbl.replace reg_node r (fresh (N_param name) (Cir.reg_width func r) []))
    func.Cir.fn_params;
  (* each block contributes: merge nodes for its phis, operator nodes for
     its instructions, steer nodes for the branch *)
  let branch_pred = Hashtbl.create 8 in (* block -> predicate node *)
  Array.iteri
    (fun b blk ->
      List.iter
        (fun (phi : Ssa.phi) ->
          let inputs =
            List.map (fun (_, op) -> node_of_operand op) phi.Ssa.p_srcs
          in
          Hashtbl.replace reg_node phi.Ssa.p_dst
            (fresh N_merge phi.Ssa.p_width inputs))
        ssa.Ssa.phis.(b);
      List.iter
        (fun instr ->
          let mk kind dst inputs =
            Hashtbl.replace reg_node dst
              (fresh kind (Cir.reg_width func dst) inputs)
          in
          match instr with
          | Cir.I_bin { op; dst; a; b } ->
            mk (N_op (Netlist.string_of_binop op)) dst
              [ node_of_operand a; node_of_operand b ]
          | Cir.I_un { op; dst; a } ->
            mk (N_op (Netlist.string_of_unop op)) dst [ node_of_operand a ]
          | Cir.I_mov { dst; src } -> mk (N_op "mov") dst [ node_of_operand src ]
          | Cir.I_cast { dst; src; _ } ->
            mk (N_op "cast") dst [ node_of_operand src ]
          | Cir.I_mux { dst; sel; if_true; if_false } ->
            mk (N_op "mux") dst
              [ node_of_operand sel; node_of_operand if_true;
                node_of_operand if_false ]
          | Cir.I_load { dst; region; addr } ->
            mk (N_load func.Cir.fn_regions.(region).Cir.rg_name) dst
              [ node_of_operand addr ]
          | Cir.I_store { region; addr; value } ->
            ignore
              (fresh (N_store func.Cir.fn_regions.(region).Cir.rg_name) 1
                 [ node_of_operand addr; node_of_operand value ]))
        blk.Cir.instrs;
      match blk.Cir.term with
      | Cir.T_branch { cond; if_true; if_false } ->
        let pred = node_of_operand cond in
        Hashtbl.replace branch_pred b pred;
        (* steer nodes gate live values into both successors; statically we
           count one steer pair per branch (per-value steers are elided to
           keep the static inventory readable) *)
        ignore (fresh N_steer 1 [ pred ]);
        ignore if_true;
        ignore if_false
      | Cir.T_return (Some op) ->
        ignore (fresh N_return (Cir.operand_width func op) [ node_of_operand op ])
      | Cir.T_return None | Cir.T_jump _ -> ())
    func.Cir.fn_blocks;
  { nodes = Array.of_list (List.rev !nodes); ssa }

type stats = {
  operators : int;
  merges : int;
  steers : int;
  memory_ops : int;
  constants : int;
  total : int;
}

let stats t =
  let count pred = Array.to_list t.nodes |> List.filter pred |> List.length in
  { operators =
      count (fun n -> match n.kind with N_op _ -> true | _ -> false);
    merges = count (fun n -> n.kind = N_merge);
    steers = count (fun n -> n.kind = N_steer);
    memory_ops =
      count (fun n ->
          match n.kind with N_load _ | N_store _ -> true | _ -> false);
    constants = count (fun n -> n.kind = N_const);
    total = Array.length t.nodes }

(* Asynchronous circuits pay handshake logic per node: estimate area as the
   synchronous operator cost plus a per-node handshake adder. *)
let handshake_area_per_node = 12.

let area t =
  Array.fold_left
    (fun acc node ->
      let fw = float_of_int (max 1 node.width) in
      let op_area =
        match node.kind with
        | N_op "*" -> 6. *. fw *. fw
        | N_op ("/" | "u/" | "%" | "u%") -> 10. *. fw *. fw
        | N_op ("+" | "-" | "<" | "<=" | "u<" | "u<=") -> 7. *. fw
        | N_op ("<<" | ">>" | ">>>") -> 3. *. fw *. Area.flog2 (max 2 node.width)
        | N_op _ -> fw
        | N_merge | N_steer -> 3. *. fw
        | N_load _ | N_store _ -> 2. *. fw
        | N_const | N_param _ | N_return -> 0.
      in
      acc +. op_area +. handshake_area_per_node)
    0. t.nodes
