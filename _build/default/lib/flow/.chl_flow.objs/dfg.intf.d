lib/flow/dfg.mli: Ssa
