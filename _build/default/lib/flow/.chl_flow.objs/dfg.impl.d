lib/flow/dfg.ml: Area Array Bitvec Cir Hashtbl List Netlist Printf Ssa
