lib/flow/asim.mli: Bitvec Cir Ssa
