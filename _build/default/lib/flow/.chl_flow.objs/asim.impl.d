lib/flow/asim.ml: Area Array Bitvec Cir Float List Neteval Option Ssa
