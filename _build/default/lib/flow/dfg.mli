(** Asynchronous dataflow circuits in the style of CASH's Pegasus IR:
    SSA definitions become operator nodes, phis become merge (mu) nodes,
    branch predicates gate steer (eta) nodes; loop back edges circulate
    tokens.  This is the static structural view of the CASH backend; the
    timed token simulation lives in {!Asim}. *)

type node_kind =
  | N_op of string  (** operator mnemonic *)
  | N_const
  | N_param of string
  | N_merge  (** mu: phi at a join/loop header *)
  | N_steer  (** eta: value gated by a branch predicate *)
  | N_load of string
  | N_store of string
  | N_return

type node = {
  id : int;
  kind : node_kind;
  width : int;
  inputs : int list;  (** producer node ids *)
}

type t = { nodes : node array; ssa : Ssa.t }

val of_ssa : Ssa.t -> t

type stats = {
  operators : int;
  merges : int;
  steers : int;
  memory_ops : int;
  constants : int;
  total : int;
}

val stats : t -> stats

val handshake_area_per_node : float

val area : t -> float
(** Operator area plus a per-node handshake adder — asynchronous
    circuits pay control logic at every node. *)
