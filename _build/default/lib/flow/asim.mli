(** Timed token simulation of the asynchronous dataflow circuit: every
    value carries the time its token becomes available; operators fire
    when inputs (and the control token) arrive, taking latency plus a
    handshake overhead; memory is token-serialized per region.  No clock
    anywhere — completion time is the dynamic critical path, which is the
    asynchronous advantage experiment E6 measures. *)

type timing = {
  latency : Cir.instr -> float;  (** pure computation delay, time units *)
  handshake : float;  (** per-token request/acknowledge overhead *)
}

val default_timing : timing
(** Latencies consistent with the Area delay model (so synchronous and
    asynchronous designs compare on one scale); handshake 2.0. *)

type outcome = {
  return_value : Bitvec.t option;
  completion_time : float;
  tokens_fired : int;
  globals : (string * Bitvec.t) list;
  memories : (string * Bitvec.t array) list;
}

exception Timeout

val run : ?timing:timing -> ?max_tokens:int -> Ssa.t -> args:Bitvec.t list -> outcome
