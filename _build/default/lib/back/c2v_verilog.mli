(** Verilog emission for the C2Verilog stack machine: a synthesizable
    processor module — fetch/execute FSM, PC/SP/FP/HP registers, unified
    RAM, and a code ROM initialized with the compiled program.  The
    simulator ({!C2v_machine}) remains the timing reference; this is the
    "translated into Verilog" artifact the original tool produced. *)

val opcode : C2verilog.instr -> int
val immediate_of : C2verilog.instr -> int64

val to_string : C2verilog.compiled -> name:string -> string
