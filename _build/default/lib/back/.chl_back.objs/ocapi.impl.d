lib/back/ocapi.ml: Area Array Bitvec Cir Design Float Fsmd Lazy List Netlist Option Rtlgen Rtlsim Verilog
