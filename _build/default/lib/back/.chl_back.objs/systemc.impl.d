lib/back/systemc.ml: Area Array Ast Bitvec Cir Design Dialect Float Fsmd List Lower Neteval Printf Schedule Simplify
