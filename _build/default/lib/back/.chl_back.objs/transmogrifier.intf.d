lib/back/transmogrifier.mli: Ast Design Dialect
