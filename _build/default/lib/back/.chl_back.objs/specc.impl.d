lib/back/specc.ml: Ast Bitvec Cir Design Dialect Fsmd_common Handelc Interp List Option Printf Schedule
