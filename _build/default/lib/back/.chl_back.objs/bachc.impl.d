lib/back/bachc.ml: Ast Cir Design Dialect Fsmd_common Handelc List Schedule
