lib/back/ocapi.mli: Design Fsmd Netlist
