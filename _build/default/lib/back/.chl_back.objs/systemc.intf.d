lib/back/systemc.mli: Ast Bitvec Design Fsmd Schedule
