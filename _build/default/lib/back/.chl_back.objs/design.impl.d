lib/back/design.ml: Area Bitvec List Option
