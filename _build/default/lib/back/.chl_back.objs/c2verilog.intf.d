lib/back/c2verilog.mli: Ast Bitvec Ctypes Hashtbl Netlist
