lib/back/c2v_verilog.mli: C2verilog
