lib/back/c2v_machine.ml: Area Array Ast Bitvec C2v_verilog C2verilog Ctypes Design Dialect Hashtbl Lazy List Neteval Pointer Printf
