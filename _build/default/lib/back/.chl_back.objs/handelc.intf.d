lib/back/handelc.mli: Ast Bitvec Design Dialect Interp
