lib/back/c2v_verilog.ml: Area Array Bitvec Buffer C2verilog Int64 List Netlist Printf Verilog
