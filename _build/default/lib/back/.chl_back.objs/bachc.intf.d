lib/back/bachc.mli: Ast Design Dialect Schedule
