lib/back/c2v_machine.mli: Ast Bitvec C2verilog Design
