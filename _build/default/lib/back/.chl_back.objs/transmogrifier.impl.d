lib/back/transmogrifier.ml: Ast Design Dialect Fsmd Fsmd_common Loopopt
