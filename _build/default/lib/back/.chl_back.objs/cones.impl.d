lib/back/cones.ml: Area Array Ast Bitvec Ctypes Design Dialect Hashtbl List Loopform Neteval Netlist Printf String Verilog
