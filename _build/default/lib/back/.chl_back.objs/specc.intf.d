lib/back/specc.mli: Ast Design Dialect
