lib/back/fsmd_common.ml: Area Array Ast Cir Design Dialect Float Fsmd Lazy Lower Printf Rtlgen Rtlsim Schedule Simplify Verilog
