lib/back/fsmd_common.mli: Ast Cir Design Dialect Fsmd Lower Schedule
