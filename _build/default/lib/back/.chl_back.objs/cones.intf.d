lib/back/cones.mli: Ast Design Netlist
