lib/back/cash.mli: Asim Ast Design Dialect
