lib/back/cash.ml: Area Asim Ast Design Dfg Dialect Lower Printf Ssa
