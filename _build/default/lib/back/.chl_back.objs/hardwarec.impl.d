lib/back/hardwarec.ml: Area Array Ast Cir Constrain Design Dialect Float Fsmd Lazy List Lower Printf Rtlgen Rtlsim Schedule Verilog
