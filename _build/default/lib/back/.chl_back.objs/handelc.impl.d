lib/back/handelc.ml: Area Array Ast Bitvec Ctypes Design Dialect Float Fsmd Fun Hashtbl Interp Lazy List Loopopt Lower Option Printf Rtlgen Simplify String Verilog
