lib/back/hardwarec.mli: Ast Constrain Design Dialect Schedule
