lib/back/c2verilog.ml: Array Ast Bitvec Ctypes Hashtbl Int64 List Netlist Option Printf String
