lib/back/design.mli: Area Bitvec
