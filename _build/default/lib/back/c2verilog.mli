(** C2Verilog backend [Soderman & Panchul 1998], part 1: the compiler.

    "Truly broad support for ANSI C" — pointers into one address space,
    recursion, malloc — pushes the hardware toward a processor shape:
    this module compiles the whole program to a word stack machine (the
    simulator and Design wrapper live in {!C2v_machine}, the processor's
    Verilog in {!C2v_verilog}). *)

exception Compile_error of string

type instr =
  | Push of int64
  | Push_global_addr of int  (** absolute word address *)
  | Push_frame_addr of int  (** FP + offset *)
  | Load  (** pop addr, push mem[addr] *)
  | Store  (** pop value, pop addr *)
  | Bin of Netlist.binop * int  (** operate then truncate to width *)
  | Un of Netlist.unop * int
  | Cast of { signed : bool; from_width : int; to_width : int }
  | Dup
  | Drop
  | Jump of int
  | Jump_if_zero of int
  | Call of int * int  (** target pc, argument words *)
  | Enter of int  (** allocate local words, save FP *)
  | Ret of { args : int; has_value : bool }
  | Alloc  (** pop word count, push heap address (malloc) *)
  | Halt of { has_value : bool }

val cycles_of_instr : instr -> int
(** The backend's rule-based cycle costs: memory 2, multiply 2,
    divide 8, everything else 1-2. *)

type var_binding = { offset : int; is_global : bool; ty : Ctypes.t }

type compiled = {
  code : instr array;
  entry_pc : int;
  entry_args : int;
  memory_words : int;
  initial_memory : (int * Bitvec.t) list;
  globals_layout : (string, var_binding) Hashtbl.t;
  stack_base : int;
  heap_base : int;
}

val compile_program : Ast.program -> entry:string -> compiled
(** Compile every function; calls are patched, Gt/Ge normalized to
    swapped Lt/Le.  @raise Compile_error on unsupported constructs
    (channels, par). *)
