(* CFG analyses over CIR: reverse postorder, predecessors, dominators
   (Cooper–Harvey–Kennedy), dominance frontiers and natural-loop
   detection.  Consumed by SSA construction and the loop-oriented
   schedulers. *)

type t = {
  func : Cir.func;
  preds : int list array;
  rpo : int array; (* blocks in reverse postorder *)
  rpo_index : int array; (* block -> position in rpo, -1 if unreachable *)
  idom : int array; (* immediate dominator; entry maps to itself *)
}

let compute_preds func =
  let n = Cir.num_blocks func in
  let preds = Array.make n [] in
  for b = 0 to n - 1 do
    List.iter
      (fun s -> preds.(s) <- b :: preds.(s))
      (Cir.successors (Cir.block func b))
  done;
  Array.map List.rev preds

let compute_rpo func =
  let n = Cir.num_blocks func in
  let visited = Array.make n false in
  let order = ref [] in
  let rec dfs b =
    if not visited.(b) then begin
      visited.(b) <- true;
      List.iter dfs (Cir.successors (Cir.block func b));
      order := b :: !order
    end
  in
  dfs func.Cir.fn_entry;
  Array.of_list !order

(* Cooper-Harvey-Kennedy iterative dominator algorithm. *)
let compute_idom func preds rpo rpo_index =
  let n = Cir.num_blocks func in
  let idom = Array.make n (-1) in
  let entry = func.Cir.fn_entry in
  idom.(entry) <- entry;
  let intersect a b =
    let a = ref a and b = ref b in
    while !a <> !b do
      while rpo_index.(!a) > rpo_index.(!b) do
        a := idom.(!a)
      done;
      while rpo_index.(!b) > rpo_index.(!a) do
        b := idom.(!b)
      done
    done;
    !a
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun b ->
        if b <> entry then begin
          let processed =
            List.filter (fun p -> idom.(p) <> -1) preds.(b)
          in
          match processed with
          | [] -> ()
          | first :: rest ->
            let new_idom = List.fold_left intersect first rest in
            if idom.(b) <> new_idom then begin
              idom.(b) <- new_idom;
              changed := true
            end
        end)
      rpo
  done;
  idom

let build func =
  let preds = compute_preds func in
  let rpo = compute_rpo func in
  let n = Cir.num_blocks func in
  let rpo_index = Array.make n (-1) in
  Array.iteri (fun i b -> rpo_index.(b) <- i) rpo;
  let idom = compute_idom func preds rpo rpo_index in
  { func; preds; rpo; rpo_index; idom }

let reachable t b = t.rpo_index.(b) >= 0

(** [dominates t a b]: does block [a] dominate block [b]? *)
let dominates t a b =
  let rec go x = if x = a then true else if x = t.idom.(x) then false else go t.idom.(x)
  in
  reachable t a && reachable t b && go b

(** Dominance frontier of each block. *)
let dominance_frontiers t =
  let n = Cir.num_blocks t.func in
  let df = Array.make n [] in
  for b = 0 to n - 1 do
    if reachable t b && List.length t.preds.(b) >= 2 then
      List.iter
        (fun p ->
          if reachable t p then begin
            let runner = ref p in
            while !runner <> t.idom.(b) do
              if not (List.mem b df.(!runner)) then
                df.(!runner) <- b :: df.(!runner);
              runner := t.idom.(!runner)
            done
          end)
        t.preds.(b)
  done;
  df

type natural_loop = {
  header : int;
  latch : int; (* source of the back edge *)
  body : int list; (* blocks in the loop, header included *)
}

(** Natural loops from back edges (latch -> header where header dominates
    latch). *)
let natural_loops t =
  let loops = ref [] in
  Array.iter
    (fun b ->
      List.iter
        (fun s ->
          if reachable t b && dominates t s b then begin
            (* back edge b -> s; collect the loop body *)
            let body = ref [ s ] in
            let rec add x =
              if not (List.mem x !body) then begin
                body := x :: !body;
                List.iter add t.preds.(x)
              end
            in
            add b;
            loops := { header = s; latch = b; body = !body } :: !loops
          end)
        (Cir.successors (Cir.block t.func b)))
    t.rpo;
  List.rev !loops
