(** Andersen-style points-to analysis over the AST — the paper's "costly
    pointer analysis" that C's pointer semantics demands.

    Flow-insensitive, field-insensitive (arrays smashed to one abstract
    location), inclusion constraints solved by a worklist.  Abstract
    locations are declared variables qualified by their function
    ("f::x"), or "::g" for globals. *)

type result

val analyze : Ast.program -> result
(** Run over a type-checked program. *)

val points_to : result -> string -> string list
(** The abstract locations a qualified pointer variable may reference. *)

val may_alias : result -> string -> string -> bool
(** May two pointer variables reference the same location? *)

val fully_partitionable : result -> bool
(** True when every pointer resolves to at most one abstract location —
    the condition under which a unified memory can be banked per array
    (experiment E9). *)
