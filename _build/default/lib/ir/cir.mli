(** CIR: the sequential three-address intermediate representation.

    A function is a CFG of basic blocks over virtual registers (each with
    a bit width) and memory regions (one per array — the partitioned-
    memory model).  Calls are already inlined; channels/par live outside
    CIR.  The operator vocabulary is shared with the netlist layer so
    every evaluator computes identically. *)

type reg = int

type operand = O_reg of reg | O_imm of Bitvec.t

type instr =
  | I_bin of { op : Netlist.binop; dst : reg; a : operand; b : operand }
  | I_un of { op : Netlist.unop; dst : reg; a : operand }
  | I_mov of { dst : reg; src : operand }
  | I_cast of { dst : reg; signed : bool; src : operand }
      (** resize [src] (source signedness) to the width of [dst] *)
  | I_mux of { dst : reg; sel : operand; if_true : operand; if_false : operand }
  | I_load of { dst : reg; region : int; addr : operand }
  | I_store of { region : int; addr : operand; value : operand }

type terminator =
  | T_jump of int
  | T_branch of { cond : operand; if_true : int; if_false : int }
      (** taken when the operand is nonzero *)
  | T_return of operand option

type block = {
  b_id : int;
  mutable instrs : instr list;
  mutable term : terminator;
}

type region = {
  rg_name : string;
  rg_words : int;
  rg_width : int;
  rg_init : Bitvec.t array option;
}

type func = {
  fn_name : string;
  fn_params : (string * reg) list;
  fn_ret_width : int;  (** 0 for void *)
  mutable fn_blocks : block array;
  fn_entry : int;
  mutable fn_reg_widths : int array;
  mutable fn_reg_count : int;
  fn_regions : region array;
  fn_globals : (string * reg * Bitvec.t) list;
      (** scalar globals promoted to registers: initialized before entry,
          observable after return *)
}

val reg_width : func -> reg -> int
val num_blocks : func -> int
val block : func -> int -> block
val operand_width : func -> operand -> int

val def_of : instr -> reg option
val uses_of : instr -> reg list
val uses_of_terminator : terminator -> reg list

val memory_access : instr -> (int * [ `Read | `Write ]) option
val successors : block -> int list

val string_of_operand : operand -> string
val string_of_instr : instr -> string
val string_of_terminator : terminator -> string
val to_string : func -> string

val num_instrs : func -> int
