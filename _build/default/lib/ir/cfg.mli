(** CFG analyses over CIR: reverse postorder, predecessors, dominators
    (Cooper–Harvey–Kennedy), dominance frontiers, natural loops. *)

type t = {
  func : Cir.func;
  preds : int list array;
  rpo : int array;  (** reachable blocks in reverse postorder *)
  rpo_index : int array;  (** block -> rpo position; -1 if unreachable *)
  idom : int array;  (** immediate dominator; the entry maps to itself *)
}

val compute_preds : Cir.func -> int list array
val compute_rpo : Cir.func -> int array

val build : Cir.func -> t

val reachable : t -> int -> bool

val dominates : t -> int -> int -> bool
(** [dominates t a b]: does block [a] dominate block [b]?  (Reflexive.) *)

val dominance_frontiers : t -> int list array

type natural_loop = {
  header : int;
  latch : int;  (** source of the back edge *)
  body : int list;  (** blocks in the loop, header included *)
}

val natural_loops : t -> natural_loop list
(** Loops from back edges (latch -> header with header dominating latch). *)
