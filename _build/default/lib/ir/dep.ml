(* Data-dependence graphs over straight-line CIR instruction sequences.

   Used by the list scheduler (intra-block dependences bound how many
   operations can issue together), the ILP-limit study (dependences over a
   dynamic trace) and the modulo scheduler (loop-carried dependences).

   Edge kinds follow the classic taxonomy: RAW (true), WAR (anti), WAW
   (output), plus memory ordering edges — a store to a region orders with
   every other access to the same region; loads may reorder freely with
   loads. *)

type kind = Raw | War | Waw | Mem

type edge = { src : int; dst : int; kind : kind }

type graph = {
  instrs : Cir.instr array;
  edges : edge list;
  preds : (int * kind) list array; (* per node: (pred, kind) *)
  succs : (int * kind) list array;
}

(** Build the dependence DAG of an instruction sequence. *)
let of_instrs (instrs : Cir.instr list) : graph =
  let arr = Array.of_list instrs in
  let n = Array.length arr in
  let edges = ref [] in
  let add src dst kind = if src <> dst then edges := { src; dst; kind } :: !edges in
  let last_def = Hashtbl.create 32 in (* reg -> node *)
  let readers_since_def = Hashtbl.create 32 in (* reg -> node list *)
  let last_store = Hashtbl.create 8 in (* region -> node *)
  let loads_since_store = Hashtbl.create 8 in (* region -> node list *)
  for i = 0 to n - 1 do
    let instr = arr.(i) in
    (* true dependences *)
    List.iter
      (fun r ->
        match Hashtbl.find_opt last_def r with
        | Some d -> add d i Raw
        | None -> ())
      (Cir.uses_of instr);
    (* memory dependences *)
    (match Cir.memory_access instr with
    | Some (region, `Read) ->
      (match Hashtbl.find_opt last_store region with
      | Some s -> add s i Mem
      | None -> ());
      let l =
        match Hashtbl.find_opt loads_since_store region with
        | Some l -> l
        | None -> []
      in
      Hashtbl.replace loads_since_store region (i :: l)
    | Some (region, `Write) ->
      (match Hashtbl.find_opt last_store region with
      | Some s -> add s i Mem
      | None -> ());
      List.iter
        (fun l -> add l i Mem)
        (match Hashtbl.find_opt loads_since_store region with
        | Some l -> l
        | None -> []);
      Hashtbl.replace last_store region i;
      Hashtbl.replace loads_since_store region []
    | None -> ());
    (* output and anti dependences *)
    (match Cir.def_of instr with
    | Some d ->
      (match Hashtbl.find_opt last_def d with
      | Some prev -> add prev i Waw
      | None -> ());
      List.iter
        (fun r -> add r i War)
        (match Hashtbl.find_opt readers_since_def d with
        | Some l -> l
        | None -> []);
      Hashtbl.replace last_def d i;
      Hashtbl.replace readers_since_def d []
    | None -> ());
    List.iter
      (fun r ->
        let l =
          match Hashtbl.find_opt readers_since_def r with
          | Some l -> l
          | None -> []
        in
        Hashtbl.replace readers_since_def r (i :: l))
      (Cir.uses_of instr)
  done;
  let preds = Array.make n [] and succs = Array.make n [] in
  List.iter
    (fun e ->
      preds.(e.dst) <- (e.src, e.kind) :: preds.(e.dst);
      succs.(e.src) <- (e.dst, e.kind) :: succs.(e.src))
    !edges;
  { instrs = arr; edges = !edges; preds; succs }

(** Critical-path length in instruction counts (unit latency). *)
let critical_path g =
  let n = Array.length g.instrs in
  let depth = Array.make n 1 in
  for i = 0 to n - 1 do
    List.iter
      (fun (p, _) -> if depth.(p) + 1 > depth.(i) then depth.(i) <- depth.(p) + 1)
      g.preds.(i)
  done;
  Array.fold_left max 0 depth

(** True-dependence-only variant, as if registers were infinitely renamed
    (Wall's "perfect renaming" model). *)
let of_instrs_renamed (instrs : Cir.instr list) : graph =
  let g = of_instrs instrs in
  let edges = List.filter (fun e -> e.kind = Raw || e.kind = Mem) g.edges in
  let n = Array.length g.instrs in
  let preds = Array.make n [] and succs = Array.make n [] in
  List.iter
    (fun e ->
      preds.(e.dst) <- (e.src, e.kind) :: preds.(e.dst);
      succs.(e.src) <- (e.dst, e.kind) :: succs.(e.src))
    edges;
  { instrs = g.instrs; edges; preds; succs }
