(* CIR interpreter: executes a lowered function directly.

   Used as the mid-level oracle — tests check AST interpreter ==
   CIR interpreter == every backend's hardware simulation — and by the
   ILP-limit study, which consumes the dynamic instruction trace this
   interpreter can record. *)

exception Runtime_error of string
exception Timeout

let error fmt = Printf.ksprintf (fun m -> raise (Runtime_error m)) fmt

type state = {
  func : Cir.func;
  regs : Bitvec.t array;
  memories : Bitvec.t array array;
  mutable executed : int; (* dynamic instruction count *)
  mutable trace : (int * Cir.instr) list; (* reversed (block, instr) trace *)
  record_trace : bool;
}

let operand_value st = function
  | Cir.O_imm bv -> bv
  | Cir.O_reg r -> st.regs.(r)

let exec_instr st instr =
  st.executed <- st.executed + 1;
  match instr with
  | Cir.I_bin { op; dst; a; b } ->
    st.regs.(dst) <- Neteval.apply_binop op (operand_value st a) (operand_value st b)
  | Cir.I_un { op; dst; a } ->
    st.regs.(dst) <- Neteval.apply_unop op (operand_value st a)
  | Cir.I_mov { dst; src } -> st.regs.(dst) <- operand_value st src
  | Cir.I_cast { dst; signed; src } ->
    st.regs.(dst) <-
      Bitvec.resize ~signed ~width:(Cir.reg_width st.func dst)
        (operand_value st src)
  | Cir.I_mux { dst; sel; if_true; if_false } ->
    st.regs.(dst) <-
      (if Bitvec.to_bool (operand_value st sel) then operand_value st if_true
       else operand_value st if_false)
  | Cir.I_load { dst; region; addr } ->
    (* Total semantics shared with every hardware simulator: an
       out-of-range load reads zero.  (If-conversion makes loads
       speculative, so they must be safe on the not-taken path.) *)
    let mem = st.memories.(region) in
    let a = Bitvec.to_int_unsigned (operand_value st addr) in
    st.regs.(dst) <-
      (if a < Array.length mem then mem.(a)
       else Bitvec.zero (Cir.reg_width st.func dst))
  | Cir.I_store { region; addr; value } ->
    let mem = st.memories.(region) in
    let a = Bitvec.to_int_unsigned (operand_value st addr) in
    if a < Array.length mem then mem.(a) <- operand_value st value

type outcome = {
  return_value : Bitvec.t option;
  dynamic_instrs : int;
  globals : (string * Bitvec.t) list;
  memories : (string * Bitvec.t array) list;
  trace : (int * Cir.instr) list; (* in execution order when recorded *)
}

(** Execute [func] with argument values bound to its parameter registers.
    [max_steps] bounds dynamic instructions. *)
let run ?(max_steps = 10_000_000) ?(record_trace = false) (func : Cir.func)
    ~args : outcome =
  let regs =
    Array.init func.Cir.fn_reg_count (fun r ->
        Bitvec.zero (max 1 func.Cir.fn_reg_widths.(r)))
  in
  let memories =
    Array.map
      (fun (rg : Cir.region) ->
        match rg.rg_init with
        | Some init -> Array.copy init
        | None -> Array.make rg.rg_words (Bitvec.zero rg.rg_width))
      func.Cir.fn_regions
  in
  let st = { func; regs; memories; executed = 0; trace = []; record_trace } in
  (* Initialize scalar globals, then bind parameters. *)
  List.iter
    (fun (_, r, init) -> regs.(r) <- init)
    func.Cir.fn_globals;
  if List.length args <> List.length func.Cir.fn_params then
    error "%s expects %d args" func.Cir.fn_name
      (List.length func.Cir.fn_params);
  List.iter2
    (fun (_, r) v ->
      regs.(r) <-
        Bitvec.resize ~signed:true ~width:(Cir.reg_width func r) v)
    func.Cir.fn_params args;
  let rec run_block id =
    let blk = Cir.block func id in
    List.iter
      (fun instr ->
        if st.executed > max_steps then raise Timeout;
        if st.record_trace then st.trace <- (id, instr) :: st.trace;
        exec_instr st instr)
      blk.Cir.instrs;
    st.executed <- st.executed + 1;
    match blk.Cir.term with
    | Cir.T_jump next -> run_block next
    | Cir.T_branch { cond; if_true; if_false } ->
      if Bitvec.to_bool (operand_value st cond) then run_block if_true
      else run_block if_false
    | Cir.T_return v -> Option.map (operand_value st) v
  in
  let return_value = run_block func.Cir.fn_entry in
  { return_value;
    dynamic_instrs = st.executed;
    globals =
      List.map (fun (name, r, _) -> (name, regs.(r))) func.Cir.fn_globals;
    memories =
      Array.to_list
        (Array.mapi
           (fun i (rg : Cir.region) -> (rg.rg_name, st.memories.(i)))
           func.Cir.fn_regions);
    trace = List.rev st.trace }
