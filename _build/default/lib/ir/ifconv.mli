(** If-conversion: forward branches with small straight-line arms become
    straight-line predicated code (both arms execute speculatively into
    fresh registers; muxes select results; stores become read-modify-write
    under the predicate).

    This is the standard mitigation for the paper's E2 observation that
    control-flow transfers defeat pipelining: after conversion, an
    innermost loop body with an if/else is a single block and modulo
    scheduling applies.  Speculation is safe because every evaluator gives
    out-of-range memory accesses total read-zero/ignore semantics. *)

val convert : Cir.func -> Cir.func * int
(** Convert every diamond/triangle to a fixpoint; the result is
    CFG-simplified.  Returns the rewritten function and the number of
    branches eliminated.  Semantics-preserving (differentially tested). *)
