lib/ir/cfg.mli: Cir
