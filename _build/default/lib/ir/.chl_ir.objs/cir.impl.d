lib/ir/cir.ml: Array Bitvec Buffer List Netlist Printf String
