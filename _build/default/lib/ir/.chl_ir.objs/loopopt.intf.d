lib/ir/loopopt.mli: Ast
