lib/ir/ssa.mli: Bitvec Cfg Cir
