lib/ir/dep.mli: Cir
