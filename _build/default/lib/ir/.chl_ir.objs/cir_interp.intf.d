lib/ir/cir_interp.mli: Bitvec Cir
