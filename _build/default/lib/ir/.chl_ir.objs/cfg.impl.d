lib/ir/cfg.ml: Array Cir List
