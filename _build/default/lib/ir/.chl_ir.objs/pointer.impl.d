lib/ir/pointer.ml: Ast Ctypes Hashtbl List Set String
