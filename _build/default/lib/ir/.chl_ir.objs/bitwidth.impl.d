lib/ir/bitwidth.ml: Area Array Bitvec Cir Int64 List Netlist
