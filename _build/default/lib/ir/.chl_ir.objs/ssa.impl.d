lib/ir/ssa.ml: Array Bitvec Cfg Cir Hashtbl Int List Neteval Option Queue Set
