lib/ir/cir.mli: Bitvec Netlist
