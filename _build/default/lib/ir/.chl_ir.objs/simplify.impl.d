lib/ir/simplify.ml: Array Cfg Cir List
