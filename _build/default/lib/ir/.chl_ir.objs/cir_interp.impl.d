lib/ir/cir_interp.ml: Array Bitvec Cir List Neteval Option Printf
