lib/ir/dep.ml: Array Cir Hashtbl List
