lib/ir/simplify.mli: Cir
