lib/ir/bitwidth.mli: Cir
