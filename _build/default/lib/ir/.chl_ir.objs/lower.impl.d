lib/ir/lower.ml: Array Ast Bitvec Cir Ctypes Hashtbl List Netlist Option Printf
