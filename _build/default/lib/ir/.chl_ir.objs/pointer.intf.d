lib/ir/pointer.mli: Ast
