lib/ir/ifconv.ml: Array Bitvec Cfg Cir Hashtbl List Netlist Simplify
