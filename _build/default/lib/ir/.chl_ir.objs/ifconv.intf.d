lib/ir/ifconv.mli: Cir
