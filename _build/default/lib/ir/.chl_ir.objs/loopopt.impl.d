lib/ir/loopopt.ml: Ast Ctypes Fun Int64 List Loopform Lower Option String
