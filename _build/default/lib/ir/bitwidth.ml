(* Bitwidth inference (experiment E8).

   The paper: "Bit vectors are natural in hardware, yet C only supports
   four sizes."  This analysis recovers narrow datapaths from C-typed
   programs: a flow-insensitive interval analysis over CIR registers, with
   all values read as unsigned (a register that ever holds a negative value
   keeps its top bits, so this is conservative and sound for area
   estimation).

   Each register gets a range [0, hi]; joins take the max; operators
   propagate ranges where they can be bounded and fall back to the full
   declared range where they cannot (wrapping arithmetic, division,
   variable shifts).  Iteration reaches a fixpoint quickly because ranges
   only grow and are capped by the declared width. *)

type range = { hi : Int64.t } (* upper bound of the unsigned value *)

let full_range width =
  { hi = (if width >= 63 then Int64.max_int else Int64.sub (Int64.shift_left 1L width) 1L) }

let join a b = { hi = (if Int64.unsigned_compare a.hi b.hi >= 0 then a.hi else b.hi) }

let bits_needed hi =
  let rec go n v = if Int64.equal v 0L then max 1 n else go (n + 1) (Int64.shift_right_logical v 1) in
  go 0 hi

let sat_add a b =
  let s = Int64.add a b in
  if Int64.unsigned_compare s a < 0 then Int64.max_int else s

let sat_mul a b =
  if Int64.equal a 0L || Int64.equal b 0L then 0L
  else if Int64.unsigned_compare a (Int64.unsigned_div Int64.max_int b) > 0
  then Int64.max_int
  else Int64.mul a b

type result = {
  widths : int array; (* inferred width per register *)
  declared : int array;
}

(** Infer per-register required widths for [func]. *)
let infer (func : Cir.func) : result =
  let n = func.Cir.fn_reg_count in
  let declared = func.Cir.fn_reg_widths in
  let ranges = Array.make n { hi = 0L } in
  let clamp r width =
    let full = full_range width in
    if Int64.unsigned_compare r.hi full.hi > 0 then full else r
  in
  (* seeds: parameters and globals start at their declared width (inputs
     are externally controlled); memory reads at the region width. *)
  List.iter
    (fun (_, r) -> ranges.(r) <- full_range declared.(r))
    func.Cir.fn_params;
  List.iter
    (fun (_, r, init) ->
      (* a scalar global starts at its init but may be widened by stores *)
      ranges.(r) <- { hi = Bitvec.to_int64_unsigned init })
    func.Cir.fn_globals;
  let operand_range = function
    | Cir.O_imm bv -> { hi = Bitvec.to_int64_unsigned bv }
    | Cir.O_reg r -> ranges.(r)
  in
  let transfer instr =
    match instr with
    | Cir.I_bin { op; dst; a; b } ->
      let ra = operand_range a and rb = operand_range b in
      let w = declared.(dst) in
      let r =
        match op with
        | Netlist.B_add -> clamp { hi = sat_add ra.hi rb.hi } w
        | Netlist.B_mul -> clamp { hi = sat_mul ra.hi rb.hi } w
        | Netlist.B_and ->
          { hi = (if Int64.unsigned_compare ra.hi rb.hi < 0 then ra.hi else rb.hi) }
        | Netlist.B_or | Netlist.B_xor ->
          (* bounded by the bit positions of the operands: the smallest
             all-ones mask covering both.  Unlike an additive bound this
             is a fixed point, so loop-carried xor state (CRC!) keeps its
             true width instead of widening away. *)
          let cover =
            bits_needed
              (if Int64.unsigned_compare ra.hi rb.hi >= 0 then ra.hi
               else rb.hi)
          in
          clamp (full_range cover) w
        | Netlist.B_urem ->
          (* remainder < divisor (when divisor nonzero); the div-by-zero
             convention returns the dividend, so take the max of both *)
          join ra { hi = rb.hi }
        | Netlist.B_udiv -> ra
        | Netlist.B_lshr -> ra
        | Netlist.B_eq | Netlist.B_ne | Netlist.B_ult | Netlist.B_ule
        | Netlist.B_slt | Netlist.B_sle -> { hi = 1L }
        | Netlist.B_sub | Netlist.B_sdiv | Netlist.B_srem | Netlist.B_shl
        | Netlist.B_ashr -> full_range w
      in
      (dst, r)
    | Cir.I_un { op; dst; a } ->
      let w = declared.(dst) in
      let r =
        match op with
        | Netlist.U_reduce_or -> { hi = 1L }
        | Netlist.U_not | Netlist.U_neg -> full_range w
      in
      ignore (operand_range a);
      (dst, r)
    | Cir.I_mov { dst; src } -> (dst, clamp (operand_range src) declared.(dst))
    | Cir.I_cast { dst; signed; src } ->
      let r = operand_range src in
      let r = if signed then full_range declared.(dst) else r in
      (dst, clamp r declared.(dst))
    | Cir.I_mux { dst; if_true; if_false; _ } ->
      (dst, clamp (join (operand_range if_true) (operand_range if_false))
              declared.(dst))
    | Cir.I_load { dst; region; _ } ->
      (dst, full_range func.Cir.fn_regions.(region).Cir.rg_width)
    | Cir.I_store _ -> (-1, { hi = 0L })
  in
  (* Widening: a register whose bound keeps growing (a loop accumulator)
     jumps to its full declared range after a few updates, guaranteeing a
     sound fixpoint in bounded iterations. *)
  let update_count = Array.make n 0 in
  let widen_after = 4 in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun blk ->
        List.iter
          (fun instr ->
            let dst, r = transfer instr in
            if dst >= 0 then begin
              let joined = join ranges.(dst) r in
              if Int64.unsigned_compare joined.hi ranges.(dst).hi > 0 then begin
                update_count.(dst) <- update_count.(dst) + 1;
                ranges.(dst) <-
                  (if update_count.(dst) >= widen_after then
                     full_range declared.(dst)
                   else joined);
                changed := true
              end
            end)
          blk.Cir.instrs)
      func.Cir.fn_blocks
  done;
  { widths =
      Array.init n (fun r -> min declared.(r) (bits_needed ranges.(r).hi));
    declared = Array.copy declared }

(** Datapath area (GE) of a function's operators under a width assignment —
    the basis of the E8 comparison. *)
let datapath_area (func : Cir.func) ~widths =
  let w_of = function
    | Cir.O_reg r -> widths.(r)
    (* constants contribute their significant bits, not their C width *)
    | Cir.O_imm bv -> Bitvec.significant_bits bv
  in
  Array.fold_left
    (fun acc blk ->
      List.fold_left
        (fun acc instr ->
          match instr with
          | Cir.I_bin { op; a; b; _ } ->
            acc +. (Area.binop_cost op (max (w_of a) (w_of b))).Area.area
          | Cir.I_un { op; a; _ } ->
            acc +. (Area.unop_cost op (w_of a)).Area.area
          | Cir.I_mux { if_true; _ } ->
            acc +. (3. *. float_of_int (w_of if_true))
          | Cir.I_mov _ | Cir.I_cast _ -> acc
          | Cir.I_load _ | Cir.I_store _ -> acc +. 8.)
        acc blk.Cir.instrs)
    0. func.Cir.fn_blocks

(** Total register bits under a width assignment. *)
let register_bits (func : Cir.func) ~widths =
  Array.fold_left ( + ) 0 (Array.init func.Cir.fn_reg_count (fun r -> widths.(r)))
