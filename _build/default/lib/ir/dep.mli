(** Data-dependence graphs over straight-line CIR instruction sequences,
    with the classic edge taxonomy: RAW (true), WAR (anti), WAW (output),
    and memory ordering (a store orders with every same-region access;
    loads reorder freely with loads). *)

type kind = Raw | War | Waw | Mem

type edge = { src : int; dst : int; kind : kind }

type graph = {
  instrs : Cir.instr array;
  edges : edge list;
  preds : (int * kind) list array;
  succs : (int * kind) list array;
}

val of_instrs : Cir.instr list -> graph

val critical_path : graph -> int
(** Longest dependence chain in instructions (unit latency). *)

val of_instrs_renamed : Cir.instr list -> graph
(** True and memory dependences only, as if registers were infinitely
    renamed (Wall's perfect-renaming model). *)
