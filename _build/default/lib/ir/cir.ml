(* CIR: the sequential three-address intermediate representation.

   A CIR function is a control-flow graph of basic blocks over virtual
   registers (each with a bit width) and memory regions (each array gets
   its own region — the partitioned-memory model the scheduled backends
   use).  Function calls have already been inlined by lowering; channels
   and par are handled outside CIR (see back/handelc.ml), so CIR is purely
   sequential.  Operator vocabulary is shared with the netlist layer. *)

type reg = int

type operand = O_reg of reg | O_imm of Bitvec.t

type instr =
  | I_bin of { op : Netlist.binop; dst : reg; a : operand; b : operand }
  | I_un of { op : Netlist.unop; dst : reg; a : operand }
  | I_mov of { dst : reg; src : operand }
  | I_cast of { dst : reg; signed : bool; src : operand }
    (* resize [src] (signedness of the source) to the width of [dst] *)
  | I_mux of { dst : reg; sel : operand; if_true : operand; if_false : operand }
  | I_load of { dst : reg; region : int; addr : operand }
  | I_store of { region : int; addr : operand; value : operand }

type terminator =
  | T_jump of int
  | T_branch of { cond : operand; if_true : int; if_false : int }
  | T_return of operand option

type block = {
  b_id : int;
  mutable instrs : instr list;
  mutable term : terminator;
}

type region = {
  rg_name : string;
  rg_words : int;
  rg_width : int;
  rg_init : Bitvec.t array option;
}

type func = {
  fn_name : string;
  fn_params : (string * reg) list;
  fn_ret_width : int; (* 0 for void *)
  mutable fn_blocks : block array;
  fn_entry : int;
  mutable fn_reg_widths : int array;
  mutable fn_reg_count : int;
  fn_regions : region array;
  (* Scalar globals promoted to registers: name, register, initial value.
     They are architectural state: initialized before entry and observable
     after return. *)
  fn_globals : (string * reg * Bitvec.t) list;
}

let reg_width fn r = fn.fn_reg_widths.(r)
let num_blocks fn = Array.length fn.fn_blocks
let block fn id = fn.fn_blocks.(id)

let operand_width fn = function
  | O_reg r -> reg_width fn r
  | O_imm bv -> Bitvec.width bv

(** Destination register of an instruction, if any. *)
let def_of = function
  | I_bin { dst; _ } | I_un { dst; _ } | I_mov { dst; _ } | I_cast { dst; _ }
  | I_mux { dst; _ } | I_load { dst; _ } -> Some dst
  | I_store _ -> None

let reg_of_operand = function O_reg r -> [ r ] | O_imm _ -> []

(** Registers read by an instruction. *)
let uses_of = function
  | I_bin { a; b; _ } -> reg_of_operand a @ reg_of_operand b
  | I_un { a; _ } -> reg_of_operand a
  | I_mov { src; _ } -> reg_of_operand src
  | I_cast { src; _ } -> reg_of_operand src
  | I_mux { sel; if_true; if_false; _ } ->
    reg_of_operand sel @ reg_of_operand if_true @ reg_of_operand if_false
  | I_load { addr; _ } -> reg_of_operand addr
  | I_store { addr; value; _ } -> reg_of_operand addr @ reg_of_operand value

let uses_of_terminator = function
  | T_jump _ -> []
  | T_branch { cond; _ } -> reg_of_operand cond
  | T_return None -> []
  | T_return (Some op) -> reg_of_operand op

(** Memory region touched, with access direction. *)
let memory_access = function
  | I_load { region; _ } -> Some (region, `Read)
  | I_store { region; _ } -> Some (region, `Write)
  | I_bin _ | I_un _ | I_mov _ | I_cast _ | I_mux _ -> None

let successors blk =
  match blk.term with
  | T_jump l -> [ l ]
  | T_branch { if_true; if_false; _ } ->
    if if_true = if_false then [ if_true ] else [ if_true; if_false ]
  | T_return _ -> []

(* --- printing --- *)

let string_of_operand = function
  | O_reg r -> Printf.sprintf "r%d" r
  | O_imm bv -> Bitvec.to_string bv

let string_of_instr = function
  | I_bin { op; dst; a; b } ->
    Printf.sprintf "r%d = %s %s %s" dst (string_of_operand a)
      (Netlist.string_of_binop op) (string_of_operand b)
  | I_un { op; dst; a } ->
    Printf.sprintf "r%d = %s%s" dst (Netlist.string_of_unop op)
      (string_of_operand a)
  | I_mov { dst; src } -> Printf.sprintf "r%d = %s" dst (string_of_operand src)
  | I_cast { dst; signed; src } ->
    Printf.sprintf "r%d = %s %s" dst
      (if signed then "sext/trunc" else "zext/trunc")
      (string_of_operand src)
  | I_mux { dst; sel; if_true; if_false } ->
    Printf.sprintf "r%d = %s ? %s : %s" dst (string_of_operand sel)
      (string_of_operand if_true) (string_of_operand if_false)
  | I_load { dst; region; addr } ->
    Printf.sprintf "r%d = load m%d[%s]" dst region (string_of_operand addr)
  | I_store { region; addr; value } ->
    Printf.sprintf "store m%d[%s] = %s" region (string_of_operand addr)
      (string_of_operand value)

let string_of_terminator = function
  | T_jump l -> Printf.sprintf "jump B%d" l
  | T_branch { cond; if_true; if_false } ->
    Printf.sprintf "branch %s ? B%d : B%d" (string_of_operand cond) if_true
      if_false
  | T_return None -> "return"
  | T_return (Some op) -> Printf.sprintf "return %s" (string_of_operand op)

let to_string fn =
  let buf = Buffer.create 1024 in
  Printf.bprintf buf "func %s(%s)\n" fn.fn_name
    (String.concat ", "
       (List.map (fun (n, r) -> Printf.sprintf "%s=r%d" n r) fn.fn_params));
  Array.iteri
    (fun i (rg : region) ->
      Printf.bprintf buf "  region m%d %s[%d] (%d bits)\n" i rg.rg_name
        rg.rg_words rg.rg_width)
    fn.fn_regions;
  Array.iter
    (fun blk ->
      Printf.bprintf buf "B%d:\n" blk.b_id;
      List.iter
        (fun ins -> Printf.bprintf buf "  %s\n" (string_of_instr ins))
        blk.instrs;
      Printf.bprintf buf "  %s\n" (string_of_terminator blk.term))
    fn.fn_blocks;
  Buffer.contents buf

(* --- statistics used by experiments --- *)

let num_instrs fn =
  Array.fold_left
    (fun acc blk -> acc + List.length blk.instrs)
    0 fn.fn_blocks
