(* Andersen-style points-to analysis over the AST.

   The paper: C's "pointer semantics ... demands compilers with aggressive
   optimization to perform costly pointer analysis."  This is that
   analysis: flow-insensitive, field-insensitive (arrays are smashed to a
   single abstract location), with inclusion constraints solved by a
   worklist.

   Abstract locations are declared variables, qualified by their function
   ("f::x") or "::g" for globals.  The c2verilog backend uses the result to
   decide whether the unified byte-soup memory can be partitioned into
   per-region banks (experiment E9 reports the difference), and tests
   exercise may-alias queries. *)

module Sset = Set.Make (String)

type constraint_kind =
  | Addr_of of string * string (* p = &x : x in pts(p) *)
  | Copy of string * string (* p = q : pts(q) subset pts(p) *)
  | Load of string * string (* p = *q : forall x in pts(q), pts(x) subset pts(p) *)
  | Store of string * string (* *p = q : forall x in pts(p), pts(q) subset pts(x) *)

type result = {
  points_to : (string, Sset.t) Hashtbl.t;
  locations : string list; (* all abstract locations *)
}

let qualified func_name var = func_name ^ "::" ^ var

(* Which qualified name does an identifier refer to, and what was its
   declared type?  Locals shadow globals; we approximate scoping by
   checking whether the function declares the name anywhere (sound for the
   analysis's purposes).  The declared type matters because the type
   checker rewrites the type of an array rvalue to a pointer, so only the
   declaration still distinguishes "array name" (an address) from "pointer
   variable" (a copy source). *)
type name_env = {
  resolve : string -> string;
  declared_ty : string -> Ctypes.t option;
}

let resolver (program : Ast.program) (func : Ast.func) : name_env =
  let local_types = Hashtbl.create 16 in
  List.iter
    (fun (ty, name) -> Hashtbl.replace local_types name ty)
    func.Ast.f_params;
  Ast.iter_func
    ~stmt:(fun st ->
      match st.Ast.s with
      | Ast.Decl (ty, name, _) -> Hashtbl.replace local_types name ty
      | Ast.Expr _ | Ast.If _ | Ast.While _ | Ast.Do_while _ | Ast.For _
      | Ast.Return _ | Ast.Break | Ast.Continue | Ast.Block _ | Ast.Par _
      | Ast.Chan_send _ | Ast.Delay | Ast.Constrain _ -> ())
    ~expr:(fun _ -> ())
    func;
  let resolve name =
    if Hashtbl.mem local_types name then qualified func.Ast.f_name name
    else if Ast.find_global program name <> None then qualified "" name
    else qualified func.Ast.f_name name
  in
  let declared_ty name =
    match Hashtbl.find_opt local_types name with
    | Some ty -> Some ty
    | None -> (
      match Ast.find_global program name with
      | Some g -> Some g.Ast.g_ty
      | None -> None)
  in
  { resolve; declared_ty }

(* The "pointer value" of an expression, as a set of constraint sources:
   either names whose points-to flows in, or names whose address flows in. *)
type pvalue = { copies : string list; addresses : string list; loads : string list }

let empty_pvalue = { copies = []; addresses = []; loads = [] }

let merge a b =
  { copies = a.copies @ b.copies;
    addresses = a.addresses @ b.addresses;
    loads = a.loads @ b.loads }

let rec pvalue_of env (e : Ast.expr) : pvalue =
  match e.Ast.e with
  | Ast.Var name -> (
    (* An array name used as a value is an address; a pointer variable is a
       copy source.  Consult the declaration, not the (decayed) node type. *)
    match env.declared_ty name with
    | Some (Ctypes.Array _) ->
      { empty_pvalue with addresses = [ env.resolve name ] }
    | Some (Ctypes.Pointer _) ->
      { empty_pvalue with copies = [ env.resolve name ] }
    | Some (Ctypes.Void | Ctypes.Integer _ | Ctypes.Function _) | None ->
      empty_pvalue)
  | Ast.Addr_of inner -> (
    match base_location env inner with
    | Some loc -> { empty_pvalue with addresses = [ loc ] }
    | None -> empty_pvalue)
  | Ast.Deref inner | Ast.Index (inner, _) -> (
    match Ctypes.decay e.Ast.ty with
    | Ctypes.Pointer _ ->
      (* loading a pointer through a pointer *)
      let base = pvalue_of env inner in
      { empty_pvalue with loads = base.copies @ base.addresses }
    | Ctypes.Void | Ctypes.Integer _ | Ctypes.Array _ | Ctypes.Function _ ->
      empty_pvalue)
  | Ast.Binop (_, a, b) -> merge (pvalue_of env a) (pvalue_of env b)
  | Ast.Cast (_, a) | Ast.Unop (_, a) -> pvalue_of env a
  | Ast.Cond (_, t, f) -> merge (pvalue_of env t) (pvalue_of env f)
  | Ast.Assign (_, rhs) -> pvalue_of env rhs
  | Ast.Call _ ->
    (* handled via per-function return locations *)
    empty_pvalue
  | Ast.Const _ | Ast.Chan_recv _ -> empty_pvalue

and base_location env (e : Ast.expr) =
  match e.Ast.e with
  | Ast.Var name -> Some (env.resolve name)
  | Ast.Index (base, _) -> base_location env base
  | Ast.Deref _ -> None (* &*p = p handled in pvalue_of via copies *)
  | Ast.Const _ | Ast.Unop _ | Ast.Binop _ | Ast.Assign _ | Ast.Cond _
  | Ast.Call _ | Ast.Addr_of _ | Ast.Cast _ | Ast.Chan_recv _ -> None

(** Run the analysis over a type-checked program. *)
let analyze (program : Ast.program) : result =
  let constraints = ref [] in
  let add c = constraints := c :: !constraints in
  let locations = ref Sset.empty in
  List.iter
    (fun (g : Ast.global) ->
      locations := Sset.add (qualified "" g.Ast.g_name) !locations)
    program.Ast.globals;
  let constrain_flow target (pv : pvalue) =
    List.iter (fun src -> add (Copy (target, src))) pv.copies;
    List.iter (fun loc -> add (Addr_of (target, loc))) pv.addresses;
    List.iter (fun src -> add (Load (target, src))) pv.loads
  in
  let process_func (func : Ast.func) =
    let env = resolver program func in
    List.iter
      (fun (_, name) -> locations := Sset.add (env.resolve name) !locations)
      func.Ast.f_params;
    let return_loc = qualified func.Ast.f_name "$return" in
    let handle_assign lhs rhs =
      match Ctypes.decay lhs.Ast.ty with
      | Ctypes.Pointer _ -> (
        let pv = pvalue_of env rhs in
        match lhs.Ast.e with
        | Ast.Var name -> constrain_flow (env.resolve name) pv
        | Ast.Deref inner | Ast.Index (inner, _) ->
          let base = pvalue_of env inner in
          List.iter
            (fun p ->
              List.iter (fun src -> add (Store (p, src))) pv.copies)
            (base.copies @ base.addresses)
        | Ast.Const _ | Ast.Unop _ | Ast.Binop _ | Ast.Assign _ | Ast.Cond _
        | Ast.Call _ | Ast.Addr_of _ | Ast.Cast _ | Ast.Chan_recv _ -> ())
      | Ctypes.Void | Ctypes.Integer _ | Ctypes.Array _ | Ctypes.Function _
        -> ()
    in
    let handle_expr (e : Ast.expr) =
      match e.Ast.e with
      | Ast.Assign (lhs, rhs) -> handle_assign lhs rhs
      | Ast.Call (callee, args) -> (
        match Ast.find_func program callee with
        | None -> ()
        | Some cf ->
          List.iter2
            (fun (pty, pname) arg ->
              match Ctypes.decay pty with
              | Ctypes.Pointer _ ->
                let target = qualified cf.Ast.f_name pname in
                locations := Sset.add target !locations;
                constrain_flow target (pvalue_of env arg)
              | Ctypes.Void | Ctypes.Integer _ | Ctypes.Array _
              | Ctypes.Function _ -> ())
            cf.Ast.f_params args)
      | Ast.Const _ | Ast.Var _ | Ast.Unop _ | Ast.Binop _ | Ast.Cond _
      | Ast.Index _ | Ast.Deref _ | Ast.Addr_of _ | Ast.Cast _
      | Ast.Chan_recv _ -> ()
    in
    let handle_stmt (st : Ast.stmt) =
      match st.Ast.s with
      | Ast.Decl (ty, name, init) -> (
        locations := Sset.add (env.resolve name) !locations;
        match (Ctypes.decay ty, init) with
        | Ctypes.Pointer _, Some rhs ->
          constrain_flow (env.resolve name) (pvalue_of env rhs)
        | _, _ -> ())
      | Ast.Return (Some e) -> (
        match Ctypes.decay e.Ast.ty with
        | Ctypes.Pointer _ ->
          constrain_flow return_loc (pvalue_of env e)
        | Ctypes.Void | Ctypes.Integer _ | Ctypes.Array _
        | Ctypes.Function _ -> ())
      | Ast.Expr _ | Ast.If _ | Ast.While _ | Ast.Do_while _ | Ast.For _
      | Ast.Return None | Ast.Break | Ast.Continue | Ast.Block _ | Ast.Par _
      | Ast.Chan_send _ | Ast.Delay | Ast.Constrain _ -> ()
    in
    Ast.iter_func ~stmt:handle_stmt ~expr:handle_expr func
  in
  List.iter process_func program.Ast.funcs;
  (* Also connect call results: x = f(...) with pointer-returning f. *)
  List.iter
    (fun (func : Ast.func) ->
      let env = resolver program func in
      Ast.iter_func
        ~stmt:(fun _ -> ())
        ~expr:(fun e ->
          match e.Ast.e with
          | Ast.Assign ({ e = Ast.Var name; ty; _ }, { e = Ast.Call (callee, _); _ })
            when Ctypes.is_pointer (Ctypes.decay ty) ->
            add (Copy (env.resolve name, qualified callee "$return"))
          | Ast.Const _ | Ast.Var _ | Ast.Unop _ | Ast.Binop _ | Ast.Assign _
          | Ast.Cond _ | Ast.Call _ | Ast.Index _ | Ast.Deref _
          | Ast.Addr_of _ | Ast.Cast _ | Ast.Chan_recv _ -> ())
        func)
    program.Ast.funcs;
  (* worklist solving *)
  let points_to : (string, Sset.t) Hashtbl.t = Hashtbl.create 64 in
  let pts v =
    match Hashtbl.find_opt points_to v with
    | Some s -> s
    | None -> Sset.empty
  in
  let changed = ref true in
  List.iter
    (fun c ->
      match c with
      | Addr_of (p, x) ->
        Hashtbl.replace points_to p (Sset.add x (pts p));
        locations := Sset.add x !locations
      | Copy _ | Load _ | Store _ -> ())
    !constraints;
  while !changed do
    changed := false;
    let update target set =
      let old = pts target in
      let merged = Sset.union old set in
      if not (Sset.equal old merged) then begin
        Hashtbl.replace points_to target merged;
        changed := true
      end
    in
    List.iter
      (fun c ->
        match c with
        | Addr_of _ -> ()
        | Copy (p, q) -> update p (pts q)
        | Load (p, q) ->
          Sset.iter (fun x -> update p (pts x)) (pts q)
        | Store (p, q) ->
          Sset.iter (fun x -> update x (pts q)) (pts p))
      !constraints
  done;
  { points_to; locations = Sset.elements !locations }

let points_to result var =
  match Hashtbl.find_opt result.points_to var with
  | Some s -> Sset.elements s
  | None -> []

(** May two pointer variables reference the same location? *)
let may_alias result p q =
  let sp = Sset.of_list (points_to result p)
  and sq = Sset.of_list (points_to result q) in
  not (Sset.is_empty (Sset.inter sp sq))

(** True when every pointer in the program resolves to exactly one abstract
    location — the condition under which the unified memory can be
    partitioned into independent banks. *)
let fully_partitionable result =
  Hashtbl.fold
    (fun _ s acc -> acc && Sset.cardinal s <= 1)
    result.points_to true
