(** CIR interpreter: executes a lowered function directly — the mid-level
    oracle between the AST interpreter and the hardware simulators, and
    the source of the dynamic instruction traces the ILP study consumes.

    Memory semantics are total (out-of-range loads read zero, stores are
    ignored), matching every hardware simulator so if-converted
    speculative accesses stay safe. *)

exception Runtime_error of string
exception Timeout

type outcome = {
  return_value : Bitvec.t option;
  dynamic_instrs : int;
  globals : (string * Bitvec.t) list;
  memories : (string * Bitvec.t array) list;
  trace : (int * Cir.instr) list;
      (** (block id, instruction) in execution order, when recorded *)
}

val run :
  ?max_steps:int -> ?record_trace:bool -> Cir.func -> args:Bitvec.t list ->
  outcome
(** Execute with argument values bound to the parameter registers.
    @raise Timeout past [max_steps] dynamic instructions (default 10M). *)
