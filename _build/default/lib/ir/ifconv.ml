(* If-conversion: turning branchy diamonds into straight-line predicated
   code.

   The paper's E2 claim is that "dependencies and control-flow transfers
   limit parallelism" in pipelining.  If-conversion is the classic
   mitigation: a forward branch whose arms are small straight-line blocks
   is replaced by executing both arms speculatively into fresh registers
   and selecting results with muxes, so the loop body becomes one block
   and modulo scheduling applies.

   Handled shapes (A ends in a branch on [cond]):

     diamond:   A -> {T, F},  T -> J,  F -> J,  preds(J) = {T, F}
     triangle:  A -> {T, J},  T -> J,           preds(J) = {A, T}

   where T/F contain only instructions (no further control flow).
   Speculation safety:
     - loads on the not-taken path are safe because every evaluator
       gives out-of-range loads a total read-as-zero semantics;
     - stores are converted to read-modify-write: the new value is muxed
       with the location's current contents, so a not-taken store writes
       back what was already there (one extra load per converted store). *)

type state = {
  func : Cir.func;
  mutable reg_widths : int array;
  mutable reg_count : int;
}

let fresh st width =
  if st.reg_count = Array.length st.reg_widths then begin
    let bigger = Array.make (max 8 (2 * st.reg_count)) 0 in
    Array.blit st.reg_widths 0 bigger 0 st.reg_count;
    st.reg_widths <- bigger
  end;
  st.reg_widths.(st.reg_count) <- width;
  st.reg_count <- st.reg_count + 1;
  st.reg_count - 1

let is_straight_line (blk : Cir.block) =
  match blk.Cir.term with Cir.T_jump _ -> true | _ -> false

(* Rename a block's instructions so that every definition targets a fresh
   register; returns the rewritten instructions, the def map (original reg
   -> its speculative version), and the RMW loads inserted for stores. *)
let speculate st (instrs : Cir.instr list) ~pred =
  let version = Hashtbl.create 8 in
  let map_use r =
    match Hashtbl.find_opt version r with Some v -> v | None -> r
  in
  let map_operand = function
    | Cir.O_reg r -> Cir.O_reg (map_use r)
    | Cir.O_imm bv -> Cir.O_imm bv
  in
  let def r =
    let v = fresh st st.reg_widths.(r) in
    Hashtbl.replace version r v;
    v
  in
  let out = ref [] in
  let emit i = out := i :: !out in
  List.iter
    (fun instr ->
      match instr with
      | Cir.I_bin { op; dst; a; b } ->
        let a = map_operand a and b = map_operand b in
        emit (Cir.I_bin { op; dst = def dst; a; b })
      | Cir.I_un { op; dst; a } ->
        let a = map_operand a in
        emit (Cir.I_un { op; dst = def dst; a })
      | Cir.I_mov { dst; src } ->
        let src = map_operand src in
        emit (Cir.I_mov { dst = def dst; src })
      | Cir.I_cast { dst; signed; src } ->
        let src = map_operand src in
        emit (Cir.I_cast { dst = def dst; signed; src })
      | Cir.I_mux { dst; sel; if_true; if_false } ->
        let sel = map_operand sel
        and if_true = map_operand if_true
        and if_false = map_operand if_false in
        emit (Cir.I_mux { dst = def dst; sel; if_true; if_false })
      | Cir.I_load { dst; region; addr } ->
        let addr = map_operand addr in
        emit (Cir.I_load { dst = def dst; region; addr })
      | Cir.I_store { region; addr; value } ->
        (* read-modify-write under the predicate *)
        let addr = map_operand addr and value = map_operand value in
        let width = st.func.Cir.fn_regions.(region).Cir.rg_width in
        let old_v = fresh st width in
        emit (Cir.I_load { dst = old_v; region; addr });
        let sel = fresh st width in
        emit
          (Cir.I_mux
             { dst = sel; sel = Cir.O_reg pred; if_true = value;
               if_false = Cir.O_reg old_v });
        emit (Cir.I_store { region; addr; value = Cir.O_reg sel }))
    instrs;
  (List.rev !out, version)

(* Try to if-convert the branch ending [a_id]; returns true on success. *)
let try_convert st (preds : int list array) a_id =
  let func = st.func in
  let a = Cir.block func a_id in
  match a.Cir.term with
  | Cir.T_jump _ | Cir.T_return _ -> false
  | Cir.T_branch { cond; if_true; if_false } ->
    let block = Cir.block func in
    let shape =
      if if_true = if_false then None
      else if
        (* diamond *)
        is_straight_line (block if_true)
        && is_straight_line (block if_false)
        && (match ((block if_true).Cir.term, (block if_false).Cir.term) with
           | Cir.T_jump jt, Cir.T_jump jf ->
             jt = jf && jt <> a_id && jt <> if_true && jt <> if_false
             && List.sort compare preds.(jt) = List.sort compare [ if_true; if_false ]
           | _ -> false)
      then
        match (block if_true).Cir.term with
        | Cir.T_jump j -> Some (`Diamond (if_true, if_false, j))
        | _ -> None
      else if
        (* triangle: true arm only *)
        is_straight_line (block if_true)
        && (match (block if_true).Cir.term with
           | Cir.T_jump j ->
             j = if_false && j <> a_id && j <> if_true
             && List.sort compare preds.(j)
                = List.sort compare [ a_id; if_true ]
           | _ -> false)
      then Some (`Triangle (if_true, if_false))
      else if
        (* triangle: false arm only *)
        is_straight_line (block if_false)
        && (match (block if_false).Cir.term with
           | Cir.T_jump j ->
             j = if_true && j <> a_id && j <> if_false
             && List.sort compare preds.(j)
                = List.sort compare [ a_id; if_false ]
           | _ -> false)
      then Some (`Triangle_false (if_false, if_true))
      else None
    in
    (match shape with
    | None -> false
    | Some shape ->
      (* materialize the predicate as a 1-bit register *)
      let pred = fresh st 1 in
      let cond_width =
        match cond with
        | Cir.O_reg r -> st.reg_widths.(r)
        | Cir.O_imm bv -> Bitvec.width bv
      in
      let pred_instr =
        Cir.I_bin
          { op = Netlist.B_ne; dst = pred; a = cond;
            b = Cir.O_imm (Bitvec.zero cond_width) }
      in
      let not_pred = fresh st 1 in
      let not_pred_instr =
        Cir.I_bin
          { op = Netlist.B_eq; dst = not_pred; a = cond;
            b = Cir.O_imm (Bitvec.zero cond_width) }
      in
      let merge_and_join t_instrs t_map f_instrs f_map join =
        (* mux every register either arm defined *)
        let keys = Hashtbl.create 8 in
        Hashtbl.iter (fun r _ -> Hashtbl.replace keys r ()) t_map;
        Hashtbl.iter (fun r _ -> Hashtbl.replace keys r ()) f_map;
        let muxes =
          Hashtbl.fold
            (fun r () acc ->
              let t_v =
                match Hashtbl.find_opt t_map r with
                | Some v -> Cir.O_reg v
                | None -> Cir.O_reg r
              and f_v =
                match Hashtbl.find_opt f_map r with
                | Some v -> Cir.O_reg v
                | None -> Cir.O_reg r
              in
              Cir.I_mux
                { dst = r; sel = Cir.O_reg pred; if_true = t_v;
                  if_false = f_v }
              :: acc)
            keys []
        in
        a.Cir.instrs <-
          a.Cir.instrs @ [ pred_instr; not_pred_instr ] @ t_instrs @ f_instrs
          @ muxes;
        a.Cir.term <- Cir.T_jump join
      in
      (* the converted arms become unreachable; neutralize them so later
         predecessor computations no longer see their old jumps *)
      let kill b =
        let blk = Cir.block func b in
        blk.Cir.instrs <- [];
        blk.Cir.term <- Cir.T_return None
      in
      (match shape with
      | `Diamond (t, f, join) ->
        let t_instrs, t_map =
          speculate st (Cir.block func t).Cir.instrs ~pred
        in
        let f_instrs, f_map =
          speculate st (Cir.block func f).Cir.instrs ~pred:not_pred
        in
        merge_and_join t_instrs t_map f_instrs f_map join;
        kill t;
        kill f
      | `Triangle (t, join) ->
        let t_instrs, t_map =
          speculate st (Cir.block func t).Cir.instrs ~pred
        in
        merge_and_join t_instrs t_map [] (Hashtbl.create 1) join;
        kill t
      | `Triangle_false (f, join) ->
        let f_instrs, f_map =
          speculate st (Cir.block func f).Cir.instrs ~pred:not_pred
        in
        merge_and_join [] (Hashtbl.create 1) f_instrs f_map join;
        kill f);
      true)

(** If-convert every diamond/triangle in [func], to a fixpoint.  Returns
    the rewritten function (blocks are renumbered by a final
    simplification pass) and the number of branches converted. *)
let convert (func : Cir.func) : Cir.func * int =
  (* work on a deep copy: blocks are mutable *)
  let func =
    { func with
      Cir.fn_blocks =
        Array.map
          (fun b ->
            { Cir.b_id = b.Cir.b_id; instrs = b.Cir.instrs;
              term = b.Cir.term })
          func.Cir.fn_blocks }
  in
  let st =
    { func;
      reg_widths = Array.copy func.Cir.fn_reg_widths;
      reg_count = func.Cir.fn_reg_count }
  in
  let converted = ref 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    let preds = Cfg.compute_preds st.func in
    for b = 0 to Cir.num_blocks st.func - 1 do
      if try_convert st preds b then begin
        incr converted;
        changed := true
      end
    done
  done;
  let func =
    { st.func with
      Cir.fn_reg_widths = Array.sub st.reg_widths 0 st.reg_count;
      fn_reg_count = st.reg_count }
  in
  let simplified, _ = Simplify.simplify func in
  (simplified, !converted)
