(** CFG simplification: jump threading and straight-line block merging.

    Lowering produces many tiny blocks; the FSMD backends charge at least
    one state per block, so this pass determines what an "iteration" costs
    under the implicit-clocking rules (a simple loop becomes header +
    merged body/latch). *)

val simplify : Cir.func -> Cir.func * int array
(** Thread jumps through empty blocks, merge single-predecessor blocks
    into their unconditional-jump predecessor, drop unreachable blocks and
    renumber densely.  Returns the new function and the old-to-new block
    id mapping (-1 = removed).  Semantics-preserving (tested against the
    CIR interpreter). *)
