(* CFG simplification: jump threading and straight-line block merging.

   Lowering produces many tiny blocks (join points, dead continuations).
   The FSMD backends charge at least one state per block, so without this
   pass every loop iteration would pay for its bookkeeping blocks; after
   it, a simple loop is header + merged body/latch, which is what the
   implicit-clocking rules the paper describes actually charge. *)

(* Follow chains of empty forwarding blocks (no instrs, unconditional
   jump), avoiding cycles. *)
let resolve_target func =
  let rec follow seen b =
    if List.mem b seen then b
    else
      let blk = Cir.block func b in
      match (blk.Cir.instrs, blk.Cir.term) with
      | [], Cir.T_jump next -> follow (b :: seen) next
      | _, _ -> b
  in
  follow []

let retarget_terminator resolve = function
  | Cir.T_jump l -> Cir.T_jump (resolve l)
  | Cir.T_branch { cond; if_true; if_false } ->
    Cir.T_branch
      { cond; if_true = resolve if_true; if_false = resolve if_false }
  | Cir.T_return v -> Cir.T_return v

(** Simplify [func]: thread jumps through empty blocks, merge single-
    predecessor blocks into their unconditional-jump predecessor, drop
    unreachable blocks, and renumber densely.  Returns a new function and
    the mapping from old block ids to new ones (-1 = removed). *)
let simplify (func : Cir.func) : Cir.func * int array =
  let n = Cir.num_blocks func in
  (* 1. jump threading *)
  let resolve = resolve_target func in
  let threaded =
    Array.map
      (fun blk ->
        { blk with Cir.term = retarget_terminator resolve blk.Cir.term })
      func.Cir.fn_blocks
  in
  let func = { func with Cir.fn_blocks = threaded } in
  let entry = resolve func.Cir.fn_entry in
  let func = { func with Cir.fn_entry = entry } in
  (* 2. merge straight-line chains, walking from the entry *)
  let preds = Cfg.compute_preds func in
  let merged_into = Array.make n (-1) in
  let rec chain_of b =
    let blk = Cir.block func b in
    match blk.Cir.term with
    | Cir.T_jump next
      when next <> b && next <> entry
           && List.length preds.(next) = 1
           && merged_into.(next) = -1 ->
      merged_into.(next) <- b;
      blk.Cir.instrs <- blk.Cir.instrs @ (Cir.block func next).Cir.instrs;
      blk.Cir.term <- (Cir.block func next).Cir.term;
      chain_of b
    | Cir.T_jump _ | Cir.T_branch _ | Cir.T_return _ -> ()
  in
  (* visit in reverse postorder so heads absorb their chains first *)
  let rpo = Cfg.compute_rpo func in
  Array.iter (fun b -> if merged_into.(b) = -1 then chain_of b) rpo;
  (* 3. keep reachable, unmerged blocks; renumber *)
  let reachable = Array.make n false in
  let rec mark b =
    if not reachable.(b) then begin
      reachable.(b) <- true;
      List.iter mark (Cir.successors (Cir.block func b))
    end
  in
  mark entry;
  let mapping = Array.make n (-1) in
  let kept = ref [] in
  let next_id = ref 0 in
  for b = 0 to n - 1 do
    if reachable.(b) && merged_into.(b) = -1 then begin
      mapping.(b) <- !next_id;
      incr next_id;
      kept := b :: !kept
    end
  done;
  let remap l =
    if mapping.(l) >= 0 then mapping.(l)
    else invalid_arg "Simplify: jump to a merged block survived"
  in
  let new_blocks =
    List.rev_map
      (fun b ->
        let blk = Cir.block func b in
        { Cir.b_id = mapping.(b);
          instrs = blk.Cir.instrs;
          term =
            (match blk.Cir.term with
            | Cir.T_jump l -> Cir.T_jump (remap l)
            | Cir.T_branch { cond; if_true; if_false } ->
              Cir.T_branch
                { cond; if_true = remap if_true; if_false = remap if_false }
            | Cir.T_return v -> Cir.T_return v) })
      !kept
    |> Array.of_list
  in
  Array.sort (fun a b -> compare a.Cir.b_id b.Cir.b_id) new_blocks;
  ( { func with
      Cir.fn_blocks = new_blocks;
      fn_entry = mapping.(entry) },
    mapping )
