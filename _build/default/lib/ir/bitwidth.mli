(** Bitwidth inference — experiment E8 ("C only supports four sizes").

    Flow-insensitive interval analysis over CIR registers with all values
    read as unsigned; a register that ever holds a negative value keeps
    its top bits, so the result is conservative.  Widening guarantees a
    fixpoint for loop accumulators. *)

type result = {
  widths : int array;  (** inferred width per register *)
  declared : int array;  (** the C-typed widths *)
}

val infer : Cir.func -> result

val datapath_area : Cir.func -> widths:int array -> float
(** Operator area (GE) of the function under a width assignment — the
    basis of the E8 comparison. *)

val register_bits : Cir.func -> widths:int array -> int
(** Total register bits under a width assignment. *)
