(* FSM + datapath: the common target of the synchronous scheduled backends.

   An FSMD is a state machine where each state executes a list of CIR
   instructions (kept in original order; same-state RAW chains are wires)
   and then transfers control.  It is built from a CIR function plus a
   scheduling policy that says how each basic block's instructions spread
   over control steps — this is exactly where the surveyed languages
   differ:

     Transmogrifier C : every block is one state (cycles only at loop
                        boundaries, which are block boundaries);
     Bach C / Cyber   : list-scheduled steps under a resource allocation;
     HardwareC        : same, checked against min/max constraints;
     Handel-C         : one state per assignment (built by back/handelc). *)

type next =
  | N_goto of int
  | N_branch of { cond : Cir.operand; if_true : int; if_false : int }
  | N_halt of Cir.operand option (* computation done; result value *)

type state = {
  st_id : int;
  actions : Cir.instr list; (* original order within the state *)
  next : next;
  delay : float; (* estimated combinational delay of the state *)
}

type t = {
  fd_name : string;
  func : Cir.func; (* register widths, regions, globals *)
  states : state array;
  entry : int;
  mem_forwarding : bool; (* stores visible to same-state loads *)
}

let num_states t = Array.length t.states

(** Longest estimated combinational delay over all states: the clock
    period this design requires. *)
let critical_state_delay t =
  Array.fold_left (fun acc s -> Float.max acc s.delay) 0. t.states

(** Build an FSMD from a CIR function given a per-block scheduler. *)
let of_func ?(mem_forwarding = false) (func : Cir.func)
    ~(schedule_block : Cir.block -> Schedule.schedule) : t =
  let nblocks = Cir.num_blocks func in
  let schedules =
    Array.init nblocks (fun b -> schedule_block (Cir.block func b))
  in
  (* allocate contiguous state ids per block *)
  let first_state = Array.make nblocks 0 in
  let total = ref 0 in
  for b = 0 to nblocks - 1 do
    first_state.(b) <- !total;
    total := !total + max 1 schedules.(b).Schedule.num_steps
  done;
  let states = ref [] in
  for b = 0 to nblocks - 1 do
    let blk = Cir.block func b in
    let sched = schedules.(b) in
    let nsteps = max 1 sched.Schedule.num_steps in
    let instrs = Array.of_list blk.Cir.instrs in
    for step = 0 to nsteps - 1 do
      let actions =
        Array.to_list instrs
        |> List.filteri (fun i _ ->
               i < Array.length sched.Schedule.steps
               && sched.Schedule.steps.(i) = step)
      in
      let is_last = step = nsteps - 1 in
      let next =
        if not is_last then N_goto (first_state.(b) + step + 1)
        else
          match blk.Cir.term with
          | Cir.T_jump target -> N_goto first_state.(target)
          | Cir.T_branch { cond; if_true; if_false } ->
            N_branch
              { cond;
                if_true = first_state.(if_true);
                if_false = first_state.(if_false) }
          | Cir.T_return v -> N_halt v
      in
      let delay =
        if step < Array.length sched.Schedule.step_delay then
          sched.Schedule.step_delay.(step)
        else 0.
      in
      states :=
        { st_id = first_state.(b) + step; actions; next; delay } :: !states
    done
  done;
  let states =
    Array.of_list (List.sort (fun a b -> compare a.st_id b.st_id) (List.rev !states))
  in
  { fd_name = func.Cir.fn_name;
    func;
    states;
    entry = first_state.(func.Cir.fn_entry);
    mem_forwarding }

(** The Transmogrifier C policy: one state per basic block with everything
    chained (register-file memories allow same-cycle store/load). *)
let transmogrifier_schedule func blk =
  Schedule.list_schedule func
    { Schedule.unconstrained with Schedule.mem_forwarding = true }
    blk.Cir.instrs

(** The Handel-C policy over CIR: a state ends after each committed
    assignment (a mov to a program variable or a store); the expression
    work feeding it chains combinationally within the same state.  This is
    the structural (area/Verilog) view of "each assignment statement runs
    in one cycle" — cycle-accurate counting for the full language (par,
    channels) lives in the statement machine (back/handelc.ml). *)
let handelc_schedule func blk =
  ignore func;
  let instrs = Array.of_list blk.Cir.instrs in
  let n = Array.length instrs in
  let steps = Array.make n 0 in
  let step = ref 0 in
  for i = 0 to n - 1 do
    steps.(i) <- !step;
    match instrs.(i) with
    | Cir.I_mov _ | Cir.I_store _ -> incr step
    | Cir.I_bin _ | Cir.I_un _ | Cir.I_cast _ | Cir.I_mux _ | Cir.I_load _
      -> ()
  done;
  let num_steps = if n = 0 then 0 else steps.(n - 1) + 1 in
  { Schedule.steps; num_steps; step_delay = Array.make (max 1 num_steps) 0. }

(** One instruction per state: the maximally serial policy (used as a
    baseline and by the C2Verilog-style rule set for comparison). *)
let serial_schedule _func blk =
  let n = List.length blk.Cir.instrs in
  { Schedule.steps = Array.init n Fun.id;
    num_steps = n;
    step_delay = Array.make n 0. }

let pp_stats fmt t =
  Format.fprintf fmt "%d states, clock period %.1f"
    (num_states t) (critical_state_delay t)
