lib/rtl/rtlsim.ml: Array Bitvec Cir Fsmd List Neteval Option Printf
