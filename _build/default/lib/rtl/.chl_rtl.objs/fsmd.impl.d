lib/rtl/fsmd.ml: Array Cir Float Format Fun List Schedule
