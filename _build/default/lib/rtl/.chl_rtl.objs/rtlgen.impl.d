lib/rtl/rtlgen.ml: Area Array Bitvec Cir Fsmd Hashtbl List Neteval Netlist Printf
