lib/rtl/fsmd.mli: Cir Format Schedule
