lib/rtl/rtlsim.mli: Bitvec Fsmd
