lib/rtl/rtlgen.mli: Bitvec Cir Fsmd Netlist
