(** Cycle-accurate FSMD simulator: one step = one clock = one state.
    Within a state, actions execute in order with immediate register
    visibility (chaining-by-wire); stores are buffered to the cycle end
    unless the design uses forwarding register-file memories. *)

exception Timeout
exception Runtime_error of string

type outcome = {
  return_value : Bitvec.t option;
  cycles : int;
  globals : (string * Bitvec.t) list;
  memories : (string * Bitvec.t array) list;
  states_visited : int array;  (** visit count per state (profiling) *)
}

val run : ?max_cycles:int -> Fsmd.t -> args:Bitvec.t list -> outcome
