(** FSM + datapath: the common target of the synchronous backends.

    Each state executes CIR instructions (original order; same-state RAW
    chains are wires) and then transfers control.  The scheduling policy
    passed to [of_func] is exactly where the surveyed languages differ:
    one state per block (Transmogrifier C), list-scheduled steps
    (Bach C / Cyber / SystemC / HardwareC), one state per assignment
    (Handel-C's structural view), or one state per instruction. *)

type next =
  | N_goto of int
  | N_branch of { cond : Cir.operand; if_true : int; if_false : int }
  | N_halt of Cir.operand option  (** done; the result value *)

type state = {
  st_id : int;
  actions : Cir.instr list;  (** original order within the state *)
  next : next;
  delay : float;  (** estimated combinational delay *)
}

type t = {
  fd_name : string;
  func : Cir.func;  (** register widths, regions, globals *)
  states : state array;
  entry : int;
  mem_forwarding : bool;  (** stores visible to same-state loads *)
}

val num_states : t -> int

val critical_state_delay : t -> float
(** The clock period this design requires. *)

val of_func :
  ?mem_forwarding:bool -> Cir.func ->
  schedule_block:(Cir.block -> Schedule.schedule) -> t

val transmogrifier_schedule : Cir.func -> Cir.block -> Schedule.schedule
(** One state per basic block, everything chained; register-file
    memories (same-cycle store/load). *)

val handelc_schedule : Cir.func -> Cir.block -> Schedule.schedule
(** A state ends after each committed assignment (mov/store): the
    structural view of "each assignment statement runs in one cycle". *)

val serial_schedule : Cir.func -> Cir.block -> Schedule.schedule
(** One instruction per state: the maximally serial baseline. *)

val pp_stats : Format.formatter -> t -> unit
