(** Technology-independent area/delay model.

    Area is in gate equivalents (2-input NAND = 1) and delay in unit gate
    delays, following textbook operator structures (carry-lookahead
    adders, Wallace multipliers, barrel shifters, restoring dividers).
    The absolute numbers are not calibrated to a cell library; experiments
    rely on relative shape only (see DESIGN.md). *)

val log2_ceil : int -> int
(** Ceiling of log2; 0 for inputs <= 1. *)

val flog2 : int -> float
(** [float_of_int (log2_ceil n)], a convenience for delay formulas. *)

type cost = { area : float; delay : float }

val wiring : cost
(** Zero-cost: extracts, concatenations, constants. *)

val unop_cost : Netlist.unop -> int -> cost
(** Cost of a unary operator at a given operand width. *)

val binop_cost : Netlist.binop -> int -> cost
(** Cost of a binary operator at a given operand width. *)

val register_area_per_bit : float
val memory_area_per_bit : float

val node_cost : Netlist.t -> Netlist.signal -> cost

type report = {
  combinational_area : float;
  register_area : float;
  memory_bits : int;
  memory_area : float;
  total_area : float;
  critical_path : float; (** longest register-to-register comb delay *)
  num_nodes : int;
  num_registers : int;
}

val analyze : Netlist.t -> report
(** Static area/timing report.  The critical path is the longest
    combinational delay between sequential endpoints (registers, memory
    ports, primary inputs/outputs). *)

val pp_report : Format.formatter -> report -> unit
