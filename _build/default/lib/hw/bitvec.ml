(* Fixed-width two's-complement bit vectors, 1..64 bits, backed by int64.

   This is the single runtime value type shared by the reference C
   interpreter, the cycle-accurate RTL simulator, the asynchronous dataflow
   simulator and the netlist evaluator, so that cross-simulator equivalence
   tests compare like with like.

   Convention: [bits] always holds the value zero-extended to 64 bits
   (i.e. masked to [width]); signed operations sign-extend internally. *)

type t = { width : int; bits : int64 }

exception Width_mismatch of string

let max_width = 64

let mask_of_width w =
  if w >= 64 then -1L else Int64.sub (Int64.shift_left 1L w) 1L

(** [make ~width n] truncates [n] to [width] bits. *)
let make ~width bits =
  if width < 1 || width > max_width then
    invalid_arg (Printf.sprintf "Bitvec.make: width %d out of [1;64]" width);
  { width; bits = Int64.logand bits (mask_of_width width) }

let width t = t.width
let to_int64_unsigned t = t.bits

(** Value with the sign bit extended to the full int64. *)
let to_int64_signed t =
  if t.width = 64 then t.bits
  else
    let shift = 64 - t.width in
    Int64.shift_right (Int64.shift_left t.bits shift) shift

let to_int t = Int64.to_int (to_int64_signed t)
let to_int_unsigned t = Int64.to_int t.bits
let of_int ~width n = make ~width (Int64.of_int n)
let of_int64 ~width n = make ~width n
let of_bool b = make ~width:1 (if b then 1L else 0L)

let zero width = make ~width 0L
let one width = make ~width 1L
let ones width = make ~width (-1L)
let is_zero t = Int64.equal t.bits 0L
let to_bool t = not (is_zero t)

let equal a b = a.width = b.width && Int64.equal a.bits b.bits

let same_width op a b =
  if a.width <> b.width then
    raise
      (Width_mismatch
         (Printf.sprintf "%s: %d-bit vs %d-bit" op a.width b.width))

let lift2 op name a b =
  same_width name a b;
  make ~width:a.width (op a.bits b.bits)

let add a b = lift2 Int64.add "add" a b
let sub a b = lift2 Int64.sub "sub" a b
let mul a b = lift2 Int64.mul "mul" a b
let logand a b = lift2 Int64.logand "and" a b
let logor a b = lift2 Int64.logor "or" a b
let logxor a b = lift2 Int64.logxor "xor" a b
let lognot a = make ~width:a.width (Int64.lognot a.bits)
let neg a = make ~width:a.width (Int64.neg a.bits)

(* Division by zero follows the usual hardware divider convention
   (quotient all-ones, remainder = dividend) rather than trapping, so the
   interpreter and every simulator agree on a total semantics. *)
let sdiv a b =
  same_width "sdiv" a b;
  if is_zero b then ones a.width
  else
    let x = to_int64_signed a and y = to_int64_signed b in
    if Int64.equal x Int64.min_int && Int64.equal y (-1L) then
      make ~width:a.width Int64.min_int
    else make ~width:a.width (Int64.div x y)

let srem a b =
  same_width "srem" a b;
  if is_zero b then a
  else
    let x = to_int64_signed a and y = to_int64_signed b in
    if Int64.equal x Int64.min_int && Int64.equal y (-1L) then zero a.width
    else make ~width:a.width (Int64.rem x y)

let udiv a b =
  same_width "udiv" a b;
  if is_zero b then ones a.width
  else make ~width:a.width (Int64.unsigned_div a.bits b.bits)

let urem a b =
  same_width "urem" a b;
  if is_zero b then a
  else make ~width:a.width (Int64.unsigned_rem a.bits b.bits)

(* Shift amounts >= width yield 0 (or all-sign-bits for arithmetic right),
   matching Verilog semantics for sized shifts. *)
let shl a b =
  let n = Int64.to_int b.bits in
  if n < 0 || n >= a.width then zero a.width
  else make ~width:a.width (Int64.shift_left a.bits n)

let lshr a b =
  let n = Int64.to_int b.bits in
  if n < 0 || n >= a.width then zero a.width
  else make ~width:a.width (Int64.shift_right_logical a.bits n)

let ashr a b =
  let n = Int64.to_int b.bits in
  let n = if n < 0 || n >= a.width then a.width - 1 else n in
  make ~width:a.width (Int64.shift_right (to_int64_signed a) n)

let ult a b =
  same_width "ult" a b;
  Int64.unsigned_compare a.bits b.bits < 0

let ule a b =
  same_width "ule" a b;
  Int64.unsigned_compare a.bits b.bits <= 0

let slt a b =
  same_width "slt" a b;
  Int64.compare (to_int64_signed a) (to_int64_signed b) < 0

let sle a b =
  same_width "sle" a b;
  Int64.compare (to_int64_signed a) (to_int64_signed b) <= 0

(** [extract ~hi ~lo t] selects bits [hi..lo] inclusive. *)
let extract ~hi ~lo t =
  if lo < 0 || hi >= t.width || hi < lo then
    invalid_arg
      (Printf.sprintf "Bitvec.extract [%d:%d] of %d-bit" hi lo t.width);
  make ~width:(hi - lo + 1) (Int64.shift_right_logical t.bits lo)

let bit i t = to_bool (extract ~hi:i ~lo:i t)

(** [concat hi lo] places [hi] in the upper bits. *)
let concat hi lo =
  let width = hi.width + lo.width in
  if width > max_width then
    invalid_arg (Printf.sprintf "Bitvec.concat: width %d > 64" width);
  make ~width (Int64.logor (Int64.shift_left hi.bits lo.width) lo.bits)

let zero_extend ~width t =
  if width < t.width then invalid_arg "Bitvec.zero_extend: narrowing";
  make ~width t.bits

let sign_extend ~width t =
  if width < t.width then invalid_arg "Bitvec.sign_extend: narrowing";
  make ~width (to_int64_signed t)

(** Resize with C conversion semantics: truncate when narrowing, extend
    according to [signed] (the signedness of the source) when widening. *)
let resize ~signed ~width t =
  if width = t.width then t
  else if width < t.width then make ~width t.bits
  else if signed then sign_extend ~width t
  else zero_extend ~width t

let popcount t =
  let rec go acc bits =
    if Int64.equal bits 0L then acc
    else go (acc + 1) (Int64.logand bits (Int64.sub bits 1L))
  in
  go 0 t.bits

(** Number of bits needed to represent [t] as an unsigned value (>= 1). *)
let significant_bits t =
  let rec go n = if n <= 1 then 1 else if bit (n - 1) t then n else go (n - 1) in
  go t.width

let to_string t = Printf.sprintf "%d'd%Lu" t.width t.bits
let to_hex_string t = Printf.sprintf "%d'h%Lx" t.width t.bits
let pp fmt t = Format.pp_print_string fmt (to_string t)
