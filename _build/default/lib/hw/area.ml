(* Technology-independent area/delay model.

   Area is in gate equivalents (GE, 2-input NAND = 1) and delay in unit gate
   delays.  Arithmetic follows textbook structures: carry-lookahead adders
   (area O(w), delay O(log w)), Wallace-tree multipliers (area O(w^2), delay
   O(log w)), restoring dividers (area O(w^2), delay O(w log w)), barrel
   shifters (area O(w log w)).  Absolute numbers are not calibrated to a
   cell library; the experiments only rely on relative shape, as noted in
   DESIGN.md. *)

let log2_ceil n =
  let rec go k p = if p >= n then k else go (k + 1) (2 * p) in
  if n <= 1 then 0 else go 0 1

let flog2 n = float_of_int (log2_ceil n)

type cost = { area : float; delay : float }

let wiring = { area = 0.; delay = 0. }

let unop_cost op w =
  let fw = float_of_int w in
  match (op : Netlist.unop) with
  | U_not -> { area = 0.5 *. fw; delay = 1. }
  | U_neg -> { area = 7. *. fw; delay = flog2 w +. 2. }
  | U_reduce_or -> { area = fw; delay = flog2 w +. 1. }

let binop_cost op w =
  let fw = float_of_int w in
  match (op : Netlist.binop) with
  | B_add | B_sub -> { area = 7. *. fw; delay = flog2 w +. 2. }
  | B_mul -> { area = 6. *. fw *. fw; delay = (3. *. flog2 w) +. 4. }
  | B_udiv | B_urem | B_sdiv | B_srem ->
    { area = 10. *. fw *. fw; delay = fw *. (flog2 w +. 1.) }
  | B_and | B_or | B_xor -> { area = fw; delay = 1. }
  | B_shl | B_lshr | B_ashr ->
    { area = 3. *. fw *. flog2 w; delay = flog2 w +. 1. }
  | B_eq | B_ne -> { area = 1.5 *. fw; delay = flog2 w +. 1. }
  | B_ult | B_ule | B_slt | B_sle -> { area = 7. *. fw; delay = flog2 w +. 2. }

let register_area_per_bit = 6.
let memory_area_per_bit = 1.

let node_cost netlist signal =
  let w_in s = Netlist.width netlist s in
  match Netlist.node netlist signal with
  | Const _ | Input _ -> wiring
  | Extract _ | Zext _ | Sext _ | Concat _ -> wiring
  | Unop (op, a) -> unop_cost op (w_in a)
  | Binop (op, a, _) -> binop_cost op (w_in a)
  | Mux { if_true; _ } ->
    let fw = float_of_int (w_in if_true) in
    { area = 3. *. fw; delay = 2. }
  | Reg _ ->
    let fw = float_of_int (Netlist.width netlist signal) in
    { area = register_area_per_bit *. fw; delay = 0. }
  | Mem_read { mem; _ } ->
    let m = (Netlist.mems netlist).(mem) in
    (* Address decode + word mux; the array itself is counted once below. *)
    { area = 2. *. float_of_int m.word_width; delay = flog2 m.depth +. 2. }

type report = {
  combinational_area : float;
  register_area : float;
  memory_bits : int;
  memory_area : float;
  total_area : float;
  critical_path : float; (* longest register-to-register comb delay *)
  num_nodes : int;
  num_registers : int;
}

(** Static area/timing report for a netlist.  The critical path is the
    longest combinational delay between sequential endpoints (register or
    memory ports, primary inputs/outputs). *)
let analyze netlist =
  let n = Netlist.length netlist in
  let arrival = Array.make (max n 1) 0. in
  let comb_area = ref 0. and reg_area = ref 0. in
  let critical = ref 0. in
  let observe_path d = if d > !critical then critical := d in
  for s = 0 to n - 1 do
    let cost = node_cost netlist s in
    (match Netlist.node netlist s with
    | Reg _ -> reg_area := !reg_area +. cost.area
    | Const _ | Input _ | Unop _ | Binop _ | Mux _ | Concat _ | Extract _
    | Zext _ | Sext _ | Mem_read _ -> comb_area := !comb_area +. cost.area);
    let dep_arrival =
      List.fold_left
        (fun acc d -> Float.max acc arrival.(d))
        0.
        (Netlist.comb_deps (Netlist.node netlist s))
    in
    arrival.(s) <- dep_arrival +. cost.delay;
    observe_path arrival.(s)
  done;
  (* Paths ending at register/memory-write inputs. *)
  for s = 0 to n - 1 do
    List.iter
      (fun d -> if d >= 0 && d < n then observe_path arrival.(d))
      (Netlist.sequential_deps (Netlist.node netlist s))
  done;
  Array.iter
    (fun (m : Netlist.mem) ->
      match m.write_port with
      | None -> ()
      | Some (we, addr, data) ->
        List.iter (fun d -> observe_path arrival.(d)) [ we; addr; data ])
    (Netlist.mems netlist);
  let memory_bits =
    Array.fold_left
      (fun acc (m : Netlist.mem) -> acc + (m.word_width * m.depth))
      0 (Netlist.mems netlist)
  in
  let memory_area = memory_area_per_bit *. float_of_int memory_bits in
  { combinational_area = !comb_area;
    register_area = !reg_area;
    memory_bits;
    memory_area;
    total_area = !comb_area +. !reg_area +. memory_area;
    critical_path = !critical;
    num_nodes = n;
    num_registers = Netlist.num_registers netlist }

let pp_report fmt r =
  Format.fprintf fmt
    "area %.0f GE (comb %.0f, regs %.0f, mem %.0f) | critical path %.1f | \
     %d nodes, %d regs, %d mem bits"
    r.total_area r.combinational_area r.register_area r.memory_area
    r.critical_path r.num_nodes r.num_registers r.memory_bits
