(** Netlist evaluator: combinational settling plus a cycle-accurate
    sequential stepper.  Registers and memories update between cycles with
    read-before-write semantics. *)

type t

val create : Netlist.t -> t

val apply_unop : Netlist.unop -> Bitvec.t -> Bitvec.t
val apply_binop : Netlist.binop -> Bitvec.t -> Bitvec.t -> Bitvec.t
(** The shared operator semantics (also used by the CIR/SSA/FSMD
    simulators, so every layer computes identically). *)

val settle : t -> inputs:(string * Bitvec.t) list -> unit
(** Settle all combinational values for the current cycle; missing inputs
    read as zero. *)

val value : t -> Netlist.signal -> Bitvec.t
val output : t -> string -> Bitvec.t
val cycle : t -> int

val tick : t -> unit
(** Clock edge: commit register and memory updates. *)

val eval_combinational :
  Netlist.t -> inputs:(string * Bitvec.t) list -> (string * Bitvec.t) list
(** Evaluate a purely combinational netlist once; returns the outputs. *)

val run_until_done :
  Netlist.t -> inputs:(string * Bitvec.t) list -> done_name:string ->
  max_cycles:int ->
  ((string * Bitvec.t) list * int, [ `Timeout ]) result
(** Clock a sequential netlist until the 1-bit output [done_name] is set;
    returns the outputs and the cycle count. *)
