lib/hw/neteval.mli: Bitvec Netlist
