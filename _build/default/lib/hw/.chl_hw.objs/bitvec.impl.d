lib/hw/bitvec.ml: Format Int64 Printf
