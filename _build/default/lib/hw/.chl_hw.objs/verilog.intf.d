lib/hw/verilog.mli: Bitvec Netlist
