lib/hw/area.mli: Format Netlist
