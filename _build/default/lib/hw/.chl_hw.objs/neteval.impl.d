lib/hw/neteval.ml: Array Bitvec Hashtbl List Netlist
