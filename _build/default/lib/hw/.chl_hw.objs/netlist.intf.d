lib/hw/netlist.mli: Bitvec
