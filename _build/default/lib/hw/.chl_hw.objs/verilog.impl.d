lib/hw/verilog.ml: Array Bitvec Buffer List Netlist Printf String
