lib/hw/netlist.ml: Array Bitvec List
