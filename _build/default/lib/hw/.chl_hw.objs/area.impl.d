lib/hw/area.ml: Array Float Format List Netlist
