(* Netlist evaluator: combinational settling plus a cycle-accurate
   sequential stepper.

   Nodes are created in topological order with respect to combinational
   dependencies (the builder API guarantees this; only register next-state
   and memory write ports may point forward), so one in-order pass per cycle
   settles all combinational values.  Registers and memories update between
   cycles with read-before-write semantics. *)

type t = {
  netlist : Netlist.t;
  values : Bitvec.t array;
  reg_state : (int, Bitvec.t) Hashtbl.t; (* signal id -> current state *)
  mem_state : Bitvec.t array array; (* per memory, current contents *)
  mutable cycle : int;
}

let create netlist =
  let n = Netlist.length netlist in
  let reg_state = Hashtbl.create 16 in
  for s = 0 to n - 1 do
    match Netlist.node netlist s with
    | Reg { init; _ } -> Hashtbl.replace reg_state s init
    | Const _ | Input _ | Unop _ | Binop _ | Mux _ | Concat _ | Extract _
    | Zext _ | Sext _ | Mem_read _ -> ()
  done;
  let mem_state =
    Array.map
      (fun (m : Netlist.mem) ->
        match m.init with
        | Some a ->
          if Array.length a <> m.depth then
            invalid_arg "Neteval: memory init size mismatch";
          Array.copy a
        | None -> Array.make m.depth (Bitvec.zero m.word_width))
      (Netlist.mems netlist)
  in
  { netlist;
    values = Array.make (max n 1) (Bitvec.zero 1);
    reg_state;
    mem_state;
    cycle = 0 }

let apply_unop op a =
  match (op : Netlist.unop) with
  | U_not -> Bitvec.lognot a
  | U_neg -> Bitvec.neg a
  | U_reduce_or -> Bitvec.of_bool (not (Bitvec.is_zero a))

let apply_binop op a b =
  let open Bitvec in
  match (op : Netlist.binop) with
  | B_add -> add a b
  | B_sub -> sub a b
  | B_mul -> mul a b
  | B_udiv -> udiv a b
  | B_urem -> urem a b
  | B_sdiv -> sdiv a b
  | B_srem -> srem a b
  | B_and -> logand a b
  | B_or -> logor a b
  | B_xor -> logxor a b
  | B_shl -> shl a b
  | B_lshr -> lshr a b
  | B_ashr -> ashr a b
  | B_eq -> of_bool (equal a b)
  | B_ne -> of_bool (not (equal a b))
  | B_ult -> of_bool (ult a b)
  | B_ule -> of_bool (ule a b)
  | B_slt -> of_bool (slt a b)
  | B_sle -> of_bool (sle a b)

(** Settle all combinational values for the current cycle given primary
    input values (missing inputs read as zero). *)
let settle t ~inputs =
  let nl = t.netlist in
  for s = 0 to Netlist.length nl - 1 do
    let v =
      match Netlist.node nl s with
      | Const bv -> bv
      | Input name -> (
        match List.assoc_opt name inputs with
        | Some bv -> Bitvec.resize ~signed:false ~width:(Netlist.width nl s) bv
        | None -> Bitvec.zero (Netlist.width nl s))
      | Unop (op, a) -> apply_unop op t.values.(a)
      | Binop (op, a, b) -> apply_binop op t.values.(a) t.values.(b)
      | Mux { sel; if_true; if_false } ->
        if Bitvec.to_bool t.values.(sel) then t.values.(if_true)
        else t.values.(if_false)
      | Concat { hi; lo } -> Bitvec.concat t.values.(hi) t.values.(lo)
      | Extract { hi; lo; arg } -> Bitvec.extract ~hi ~lo t.values.(arg)
      | Zext { width; arg } -> Bitvec.zero_extend ~width t.values.(arg)
      | Sext { width; arg } -> Bitvec.sign_extend ~width t.values.(arg)
      | Reg _ -> Hashtbl.find t.reg_state s
      | Mem_read { mem; addr } ->
        let contents = t.mem_state.(mem) in
        let a = Bitvec.to_int_unsigned t.values.(addr) in
        if a < Array.length contents then contents.(a)
        else Bitvec.zero (Netlist.width nl s)
    in
    t.values.(s) <- v
  done

let value t s = t.values.(s)
let output t name = value t (List.assoc name (Netlist.outputs t.netlist))
let cycle t = t.cycle

(** Advance state: clock edge after a [settle]. *)
let tick t =
  let nl = t.netlist in
  let updates = ref [] in
  for s = 0 to Netlist.length nl - 1 do
    match Netlist.node nl s with
    | Reg { next; enable; _ } ->
      let enabled =
        match enable with
        | None -> true
        | Some e -> Bitvec.to_bool t.values.(e)
      in
      if enabled && next >= 0 then updates := (s, t.values.(next)) :: !updates
    | Const _ | Input _ | Unop _ | Binop _ | Mux _ | Concat _ | Extract _
    | Zext _ | Sext _ | Mem_read _ -> ()
  done;
  List.iter (fun (s, v) -> Hashtbl.replace t.reg_state s v) !updates;
  Array.iteri
    (fun i (m : Netlist.mem) ->
      match m.write_port with
      | None -> ()
      | Some (we, addr, data) ->
        if Bitvec.to_bool t.values.(we) then begin
          let a = Bitvec.to_int_unsigned t.values.(addr) in
          if a < m.depth then t.mem_state.(i).(a) <- t.values.(data)
        end)
    (Netlist.mems t.netlist);
  t.cycle <- t.cycle + 1

(** Evaluate a purely combinational netlist once. *)
let eval_combinational netlist ~inputs =
  let t = create netlist in
  settle t ~inputs;
  List.map (fun (name, s) -> (name, t.values.(s))) (Netlist.outputs netlist)

(** Run a sequential netlist until the 1-bit output [done_signal] is set or
    [max_cycles] elapse; returns outputs and the cycle count. *)
let run_until_done netlist ~inputs ~done_name ~max_cycles =
  let t = create netlist in
  let rec go () =
    settle t ~inputs;
    if Bitvec.to_bool (output t done_name) then
      Ok (List.map (fun (n, s) -> (n, t.values.(s))) (Netlist.outputs netlist),
          t.cycle)
    else if t.cycle >= max_cycles then Error `Timeout
    else begin
      tick t;
      go ()
    end
  in
  go ()
