(** Fixed-width two's-complement bit vectors, 1..64 bits.

    This is the single runtime value type shared by the reference C
    interpreter, the cycle-accurate RTL simulator, the asynchronous
    dataflow simulator and the netlist evaluator, so cross-simulator
    equivalence tests compare like with like.

    Total semantics: division by zero follows the hardware-divider
    convention (quotient all ones, remainder = dividend); shifts by
    amounts at or beyond the width produce zero (sign bits for arithmetic
    right shifts), matching Verilog's sized-shift behaviour. *)

type t

exception Width_mismatch of string
(** Raised by binary operations on operands of different widths. *)

val max_width : int
(** 64: the widest representable vector. *)

(** {1 Construction} *)

val make : width:int -> int64 -> t
(** [make ~width bits] truncates [bits] to [width] bits.
    @raise Invalid_argument if [width] is outside [1;64]. *)

val of_int : width:int -> int -> t
val of_int64 : width:int -> int64 -> t

val of_bool : bool -> t
(** 1-bit 0 or 1. *)

val zero : int -> t
val one : int -> t

val ones : int -> t
(** All bits set. *)

(** {1 Observation} *)

val width : t -> int

val to_int64_unsigned : t -> int64
(** The value zero-extended to 64 bits. *)

val to_int64_signed : t -> int64
(** The value with its sign bit extended to 64 bits. *)

val to_int : t -> int
(** Signed view as an OCaml int. *)

val to_int_unsigned : t -> int
(** Unsigned view as an OCaml int (beware widths near 63). *)

val is_zero : t -> bool
val to_bool : t -> bool

val equal : t -> t -> bool
(** Same width and same bits. *)

(** {1 Arithmetic and logic} — operands must share a width. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val sdiv : t -> t -> t
val srem : t -> t -> t
val udiv : t -> t -> t
val urem : t -> t -> t
val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val lognot : t -> t
val neg : t -> t

(** {1 Shifts} — the amount may have any width. *)

val shl : t -> t -> t
val lshr : t -> t -> t
val ashr : t -> t -> t

(** {1 Comparisons} — operands must share a width. *)

val ult : t -> t -> bool
val ule : t -> t -> bool
val slt : t -> t -> bool
val sle : t -> t -> bool

(** {1 Structure} *)

val extract : hi:int -> lo:int -> t -> t
(** Bits [hi..lo] inclusive. *)

val bit : int -> t -> bool

val concat : t -> t -> t
(** [concat hi lo]: [hi] in the upper bits.  Total width must fit 64. *)

val zero_extend : width:int -> t -> t
val sign_extend : width:int -> t -> t

val resize : signed:bool -> width:int -> t -> t
(** C conversion semantics: truncate when narrowing; extend according to
    [signed] (the signedness of the source) when widening. *)

val popcount : t -> int

val significant_bits : t -> int
(** Bits needed to represent the value as unsigned (at least 1). *)

(** {1 Printing} *)

val to_string : t -> string
val to_hex_string : t -> string
val pp : Format.formatter -> t -> unit
