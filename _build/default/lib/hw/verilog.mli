(** Verilog-2001 emission from a netlist: one synthesizable module per
    netlist, with a [clk] input, wires per signal, registers with reset
    initializers, and memories as reg arrays with synchronous writes. *)

val sanitize : string -> string
(** Make a name Verilog-identifier-safe. *)

val bv_literal : Bitvec.t -> string
(** Sized hex literal, e.g. [8'hff]. *)

val signal_name : Netlist.signal -> string

val to_string : Netlist.t -> string
(** Render the complete module. *)
