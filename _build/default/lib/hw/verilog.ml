(* Verilog-2001 emission from a netlist.

   Every signal becomes a wire [w<N>] (registers become regs); memories
   become reg arrays with a synchronous write block.  The output is plain
   synthesizable RTL, one module per netlist. *)

let signal_name s = Printf.sprintf "w%d" s

let bv_literal bv =
  Printf.sprintf "%d'h%Lx" (Bitvec.width bv) (Bitvec.to_int64_unsigned bv)

let range w = if w = 1 then "" else Printf.sprintf "[%d:0] " (w - 1)

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    name

let signed_expr s = Printf.sprintf "$signed(%s)" (signal_name s)

let node_rhs nl s =
  let n = signal_name in
  match Netlist.node nl s with
  | Netlist.Const bv -> Some (bv_literal bv)
  | Input name -> Some (sanitize name)
  | Unop (U_not, a) -> Some (Printf.sprintf "~%s" (n a))
  | Unop (U_neg, a) -> Some (Printf.sprintf "-%s" (n a))
  | Unop (U_reduce_or, a) -> Some (Printf.sprintf "|%s" (n a))
  | Binop (op, a, b) ->
    let infix l op r = Some (Printf.sprintf "%s %s %s" l op r) in
    (match op with
    | B_add -> infix (n a) "+" (n b)
    | B_sub -> infix (n a) "-" (n b)
    | B_mul -> infix (n a) "*" (n b)
    | B_udiv -> infix (n a) "/" (n b)
    | B_urem -> infix (n a) "%" (n b)
    | B_sdiv -> infix (signed_expr a) "/" (signed_expr b)
    | B_srem -> infix (signed_expr a) "%" (signed_expr b)
    | B_and -> infix (n a) "&" (n b)
    | B_or -> infix (n a) "|" (n b)
    | B_xor -> infix (n a) "^" (n b)
    | B_shl -> infix (n a) "<<" (n b)
    | B_lshr -> infix (n a) ">>" (n b)
    | B_ashr -> infix (signed_expr a) ">>>" (n b)
    | B_eq -> infix (n a) "==" (n b)
    | B_ne -> infix (n a) "!=" (n b)
    | B_ult -> infix (n a) "<" (n b)
    | B_ule -> infix (n a) "<=" (n b)
    | B_slt -> infix (signed_expr a) "<" (signed_expr b)
    | B_sle -> infix (signed_expr a) "<=" (signed_expr b))
  | Mux { sel; if_true; if_false } ->
    Some (Printf.sprintf "%s ? %s : %s" (n sel) (n if_true) (n if_false))
  | Concat { hi; lo } -> Some (Printf.sprintf "{%s, %s}" (n hi) (n lo))
  | Extract { hi; lo; arg } ->
    Some
      (if hi = lo then Printf.sprintf "%s[%d]" (n arg) hi
       else Printf.sprintf "%s[%d:%d]" (n arg) hi lo)
  | Zext { width; arg } ->
    let pad = width - Netlist.width nl arg in
    Some (Printf.sprintf "{%d'd0, %s}" pad (n arg))
  | Sext { width; arg } ->
    let aw = Netlist.width nl arg in
    Some
      (Printf.sprintf "{{%d{%s[%d]}}, %s}" (width - aw) (n arg) (aw - 1)
         (n arg))
  | Mem_read { mem; addr } ->
    let m = (Netlist.mems nl).(mem) in
    Some (Printf.sprintf "%s[%s]" (sanitize m.mem_name) (n addr))
  | Reg _ -> None

(** Render a netlist as a single synthesizable Verilog module. *)
let to_string netlist =
  let buf = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let ports =
    ("clk", `In, 1)
    :: List.map (fun (name, s) -> (name, `In, Netlist.width netlist s))
         (Netlist.inputs netlist)
    @ List.map
        (fun (name, s) -> (name, `Out, Netlist.width netlist s))
        (Netlist.outputs netlist)
  in
  pr "module %s(\n" (sanitize (Netlist.name netlist));
  List.iteri
    (fun i (name, dir, w) ->
      pr "  %s %s%s%s\n"
        (match dir with `In -> "input wire" | `Out -> "output wire")
        (range w) (sanitize name)
        (if i = List.length ports - 1 then "" else ","))
    ports;
  pr ");\n\n";
  Array.iter
    (fun (m : Netlist.mem) ->
      pr "  reg %s%s [0:%d];\n" (range m.word_width) (sanitize m.mem_name)
        (m.depth - 1))
    (Netlist.mems netlist);
  let regs = ref [] in
  for s = 0 to Netlist.length netlist - 1 do
    let w = Netlist.width netlist s in
    match Netlist.node netlist s with
    | Reg { init; next; enable } ->
      pr "  reg %s%s = %s;\n" (range w) (signal_name s) (bv_literal init);
      regs := (s, next, enable) :: !regs
    | Const _ | Input _ | Unop _ | Binop _ | Mux _ | Concat _ | Extract _
    | Zext _ | Sext _ | Mem_read _ ->
      pr "  wire %s%s;\n" (range w) (signal_name s)
  done;
  pr "\n";
  for s = 0 to Netlist.length netlist - 1 do
    match node_rhs netlist s with
    | Some rhs -> pr "  assign %s = %s;\n" (signal_name s) rhs
    | None -> ()
  done;
  pr "\n  always @(posedge clk) begin\n";
  List.iter
    (fun (s, next, enable) ->
      if next >= 0 then
        match enable with
        | None -> pr "    %s <= %s;\n" (signal_name s) (signal_name next)
        | Some e ->
          pr "    if (%s) %s <= %s;\n" (signal_name e) (signal_name s)
            (signal_name next))
    (List.rev !regs);
  Array.iter
    (fun (m : Netlist.mem) ->
      match m.write_port with
      | None -> ()
      | Some (we, addr, data) ->
        pr "    if (%s) %s[%s] <= %s;\n" (signal_name we)
          (sanitize m.mem_name) (signal_name addr) (signal_name data))
    (Netlist.mems netlist);
  pr "  end\n\n";
  List.iter
    (fun (name, s) -> pr "  assign %s = %s;\n" (sanitize name) (signal_name s))
    (Netlist.outputs netlist);
  pr "endmodule\n";
  Buffer.contents buf
