(** The built-in workload suite: DSP loops, control-dominated algorithms,
    bit manipulation, streaming process networks, and the thorny-C cases
    only C2Verilog accepts.  Tests and experiments share these kernels so
    every measurement has one ground truth. *)

type category =
  | Regular_loop  (** data-independent trip counts, pipelineable *)
  | Irregular  (** data-dependent control *)
  | Bit_twiddling
  | Concurrent  (** par / channels *)
  | Thorny_c  (** pointers, recursion, malloc *)

type t = {
  name : string;
  source : string;
  entry : string;
  arg_sets : int list list;  (** representative argument vectors *)
  category : category;
  description : string;
}

val gcd : t
val fib : t
val fir : t
val dotprod : t
val matmul : t
val bsort : t
val crc : t
val popcount : t
val checksum : t
val histogram : t
val isqrt_newton : t
val transpose : t
val producer_consumer : t
val pointer_sum : t
val recursion : t
val dynamic_list : t

val sequential : t list
(** Accepted by every sequential backend. *)

val combinational : t list
(** The bounded-loop, pointer-free subset Cones accepts. *)

val concurrent : t list
val thorny : t list
val all : t list

val find : string -> t option

val reference : t -> int list -> int
(** Result from the software oracle. *)

val parse : t -> Ast.program
(** Parse and type-check the workload's source. *)
