lib/core/workloads.mli: Ast
