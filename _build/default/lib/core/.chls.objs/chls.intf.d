lib/core/chls.mli: Ast Design Dialect
