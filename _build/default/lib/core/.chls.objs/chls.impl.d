lib/core/chls.ml: Ast Bachc Buffer C2v_machine Cash Cones Design Dialect Handelc Hardwarec Interp List Printf Specc String Systemc Transmogrifier Typecheck
