lib/core/workloads.ml: Interp List String Typecheck
