(* The built-in workload suite.

   These kernels are the kinds of programs the surveyed papers evaluate
   on — DSP loops (FIR, dot product, matrix multiply), control-dominated
   algorithms (GCD, bubble sort), bit manipulation (CRC, popcount),
   streaming process networks (producer/consumer over channels) and the
   thorny-C cases only C2Verilog accepts (pointers, recursion, malloc).
   Each workload carries representative argument vectors so tests and
   experiments share one ground truth. *)

type category =
  | Regular_loop (* data-independent trip counts, pipelineable *)
  | Irregular (* data-dependent control *)
  | Bit_twiddling
  | Concurrent (* par / channels *)
  | Thorny_c (* pointers, recursion, malloc *)

type t = {
  name : string;
  source : string;
  entry : string;
  arg_sets : int list list;
  category : category;
  description : string;
}

let gcd =
  { name = "gcd";
    entry = "gcd";
    category = Irregular;
    description = "Euclid's algorithm; data-dependent loop with division";
    arg_sets = [ [ 54; 24 ]; [ 1071; 462 ]; [ 17; 5 ]; [ 270; 192 ] ];
    source =
      {|
      int gcd(int a, int b) {
        while (b != 0) {
          int t = b;
          b = a % b;
          a = t;
        }
        return a;
      }
      |} }

let fib =
  { name = "fib";
    entry = "fib";
    category = Regular_loop;
    description = "iterative Fibonacci; serial dependence chain";
    arg_sets = [ [ 10 ]; [ 0 ]; [ 1 ]; [ 24 ] ];
    source =
      {|
      int fib(int n) {
        int a = 0;
        int b = 1;
        for (int i = 0; i < n; i = i + 1) {
          int t = a + b;
          a = b;
          b = t;
        }
        return a;
      }
      |} }

let fir =
  { name = "fir";
    entry = "fir";
    category = Regular_loop;
    description = "8-tap FIR filter over a window; classic DSP kernel";
    arg_sets = [ [ 1; 2 ]; [ 5; -3 ]; [ 100; 7 ] ];
    source =
      {|
      int coeff[8] = {1, -2, 3, -4, 5, -6, 7, -8};
      int fir(int x0, int step) {
        int window[8];
        for (int i = 0; i < 8; i = i + 1) {
          window[i] = x0 + i * step;
        }
        int acc = 0;
        for (int i = 0; i < 8; i = i + 1) {
          acc = acc + coeff[i] * window[i];
        }
        return acc;
      }
      |} }

let dotprod =
  { name = "dotprod";
    entry = "dotprod";
    category = Regular_loop;
    description = "dot product of two 16-element vectors";
    arg_sets = [ [ 1; 1 ]; [ 3; -2 ]; [ 7; 11 ] ];
    source =
      {|
      int va[16];
      int vb[16];
      int dotprod(int seed_a, int seed_b) {
        for (int i = 0; i < 16; i = i + 1) {
          va[i] = seed_a + i;
          vb[i] = seed_b - i;
        }
        int acc = 0;
        for (int i = 0; i < 16; i = i + 1) {
          acc = acc + va[i] * vb[i];
        }
        return acc;
      }
      |} }

let matmul =
  { name = "matmul";
    entry = "matmul";
    category = Regular_loop;
    description = "4x4 integer matrix multiply, checksum of the product";
    arg_sets = [ [ 1 ]; [ 3 ]; [ -2 ] ];
    source =
      {|
      int ma[16];
      int mb[16];
      int mc[16];
      int matmul(int seed) {
        for (int i = 0; i < 16; i = i + 1) {
          ma[i] = seed + i;
          mb[i] = seed * 2 - i;
        }
        for (int i = 0; i < 4; i = i + 1) {
          for (int j = 0; j < 4; j = j + 1) {
            int acc = 0;
            for (int k = 0; k < 4; k = k + 1) {
              acc = acc + ma[i * 4 + k] * mb[k * 4 + j];
            }
            mc[i * 4 + j] = acc;
          }
        }
        int sum = 0;
        for (int i = 0; i < 16; i = i + 1) { sum = sum + mc[i]; }
        return sum;
      }
      |} }

let bsort =
  { name = "bsort";
    entry = "bsort";
    category = Irregular;
    description = "bubble sort of 12 elements; data-dependent swaps";
    arg_sets = [ [ 7 ]; [ 1 ]; [ 13 ] ];
    source =
      {|
      int data[12];
      int bsort(int seed) {
        for (int i = 0; i < 12; i = i + 1) {
          data[i] = (seed * (i + 3) * 7919) % 100;
        }
        for (int i = 0; i < 11; i = i + 1) {
          for (int j = 0; j < 11 - i; j = j + 1) {
            if (data[j] > data[j + 1]) {
              int t = data[j];
              data[j] = data[j + 1];
              data[j + 1] = t;
            }
          }
        }
        int checksum = 0;
        for (int i = 0; i < 12; i = i + 1) {
          checksum = checksum * 3 + data[i];
        }
        return checksum;
      }
      |} }

let crc =
  { name = "crc";
    entry = "crc8";
    category = Bit_twiddling;
    description = "bit-serial CRC-8 over one input word";
    arg_sets = [ [ 0 ]; [ 0xA5 ]; [ 0x1234 ] ];
    source =
      {|
      int crc8(int input) {
        unsigned int crc = 0xFFu;
        unsigned int data = (unsigned int)input;
        for (int i = 0; i < 16; i = i + 1) {
          unsigned int bit = (crc ^ data) & 1u;
          crc = crc >> 1;
          if (bit != 0u) { crc = crc ^ 0x8Cu; }
          data = data >> 1;
        }
        return (int)crc;
      }
      |} }

let popcount =
  { name = "popcount";
    entry = "popcount";
    category = Bit_twiddling;
    description = "population count by shift-and-mask loop";
    arg_sets = [ [ 0 ]; [ 0xABCD ]; [ -1 ] ];
    source =
      {|
      int popcount(int input) {
        unsigned int x = (unsigned int)input;
        int n = 0;
        while (x != 0u) {
          n = n + (int)(x & 1u);
          x = x >> 1;
        }
        return n;
      }
      |} }

let checksum =
  { name = "checksum";
    entry = "checksum";
    category = Regular_loop;
    description = "Fletcher-style checksum with temporaries (fusion target)";
    arg_sets = [ [ 3 ]; [ 100 ]; [ -9 ] ];
    source =
      {|
      int buf[8];
      int checksum(int seed) {
        for (int i = 0; i < 8; i = i + 1) {
          buf[i] = seed * (i + 1);
        }
        int s1 = 0;
        int s2 = 0;
        for (int i = 0; i < 8; i = i + 1) {
          int v = buf[i];
          int t1 = s1 + v;
          int t2 = t1 & 65535;
          s1 = t2;
          int u1 = s2 + s1;
          int u2 = u1 & 65535;
          s2 = u2;
        }
        return s2 * 65536 + s1;
      }
      |} }

let producer_consumer =
  { name = "producer_consumer";
    entry = "run";
    category = Concurrent;
    description = "two-stage pipeline over a rendezvous channel";
    arg_sets = [ [ 4 ]; [ 9 ] ];
    source =
      {|
      chan int c;
      int run(int n) {
        int total = 0;
        par {
          {
            for (int i = 0; i < 8; i = i + 1) {
              send(c, i * n);
            }
          }
          {
            for (int i = 0; i < 8; i = i + 1) {
              int v = recv(c);
              total = total + v;
            }
          }
        }
        return total;
      }
      |} }

let pointer_sum =
  { name = "pointer_sum";
    entry = "run";
    category = Thorny_c;
    description = "walks an array through a pointer; C2Verilog territory";
    arg_sets = [ [ 5 ]; [ -2 ] ];
    source =
      {|
      int buf[10];
      int run(int seed) {
        for (int i = 0; i < 10; i = i + 1) { buf[i] = seed + i * i; }
        int* p = buf;
        int acc = 0;
        for (int i = 0; i < 10; i = i + 1) {
          acc = acc + *(p + i);
        }
        return acc;
      }
      |} }

let recursion =
  { name = "recursion";
    entry = "run";
    category = Thorny_c;
    description = "recursive Ackermann-lite; needs a runtime stack";
    arg_sets = [ [ 6 ]; [ 10 ] ];
    source =
      {|
      int sumto(int n) {
        if (n <= 0) { return 0; }
        return n + sumto(n - 1);
      }
      int fibr(int n) {
        if (n < 2) { return n; }
        return fibr(n - 1) + fibr(n - 2);
      }
      int run(int n) {
        return sumto(n) * 100 + fibr(n);
      }
      |} }

let dynamic_list =
  { name = "dynamic_list";
    entry = "run";
    category = Thorny_c;
    description = "malloc'd linked list build + traversal";
    arg_sets = [ [ 5 ]; [ 9 ] ];
    source =
      {|
      int run(int n) {
        /* node: [0] = value, [1] = next pointer (0 = nil) */
        int* head = (int*)0;
        for (int i = 0; i < n; i = i + 1) {
          int* node = malloc(2);
          node[0] = i * i;
          node[1] = (int)head;
          head = node;
        }
        int acc = 0;
        while ((int)head != 0) {
          acc = acc + head[0];
          head = (int*)head[1];
        }
        return acc;
      }
      |} }

let histogram =
  { name = "histogram";
    entry = "histogram";
    category = Regular_loop;
    description = "bin 32 samples into 8 buckets; read-modify-write on one RAM";
    arg_sets = [ [ 1 ]; [ 5 ]; [ -3 ] ];
    source =
      {|
      int bins[8];
      int histogram(int seed) {
        for (int i = 0; i < 8; i = i + 1) { bins[i] = 0; }
        for (int i = 0; i < 32; i = i + 1) {
          int sample = (((seed * 7 + i * i * i) & 1023) >> 2) & 7;
          bins[sample] = bins[sample] + 1;
        }
        int spread = 0;
        for (int i = 0; i < 8; i = i + 1) {
          spread = spread * 33 + bins[i];
        }
        return spread;
      }
      |} }

let isqrt_newton =
  { name = "isqrt_newton";
    entry = "isqrt";
    category = Irregular;
    description = "Newton iteration for integer square root; division chain";
    arg_sets = [ [ 123456 ]; [ 0 ]; [ 17 ]; [ 10000 ] ];
    source =
      {|
      int isqrt(int x) {
        if (x <= 0) { return 0; }
        int guess = x;
        int next = (guess + x / guess) / 2;
        while (next < guess) {
          guess = next;
          next = (guess + x / guess) / 2;
        }
        return guess;
      }
      |} }

let transpose =
  { name = "transpose";
    entry = "transpose";
    category = Regular_loop;
    description = "4x4 in-place transpose, checksummed; swap-heavy memory traffic";
    arg_sets = [ [ 2 ]; [ 9 ] ];
    source =
      {|
      int m[16];
      int transpose(int seed) {
        for (int i = 0; i < 16; i = i + 1) { m[i] = seed * i + (i ^ 5); }
        for (int i = 0; i < 4; i = i + 1) {
          for (int j = i + 1; j < 4; j = j + 1) {
            int t = m[i * 4 + j];
            m[i * 4 + j] = m[j * 4 + i];
            m[j * 4 + i] = t;
          }
        }
        int acc = 0;
        for (int i = 0; i < 16; i = i + 1) { acc = acc * 7 + m[i]; }
        return acc;
      }
      |} }

(** Workloads every sequential backend accepts. *)
let sequential =
  [ gcd; fib; fir; dotprod; matmul; bsort; crc; popcount; checksum;
    histogram; isqrt_newton; transpose ]

(** Bounded-loop, pointer-free subset Cones accepts (no while loops, no
    data-dependent trip counts — bsort's triangular inner loop is out). *)
let combinational = [ fir; dotprod; matmul; crc; checksum ]

let concurrent = [ producer_consumer ]
let thorny = [ pointer_sum; recursion; dynamic_list ]
let all = sequential @ concurrent @ thorny

let find name = List.find_opt (fun w -> String.equal w.name name) all

(** Reference result from the software oracle. *)
let reference w args =
  Interp.run_int w.source ~entry:w.entry ~args

let parse w = Typecheck.parse_and_check w.source
