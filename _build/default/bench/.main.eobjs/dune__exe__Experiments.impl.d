bench/experiments.ml: Area Bitwidth Chls Constrain Design Hardwarec Ifconv Ilp_limits List Loopopt Lower Option Pipeline Pointer Printf Simplify String Tables Typecheck Workloads
