bench/main.mli:
