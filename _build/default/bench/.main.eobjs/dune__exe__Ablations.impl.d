bench/ablations.ml: Asim Bachc Cash Chls Design List Option Printf Schedule Tables Workloads
