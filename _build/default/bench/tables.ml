(* Minimal fixed-width table rendering for the experiment harness. *)

let hr width = print_endline (String.make width '-')

let section id title claim =
  print_newline ();
  print_endline (String.make 78 '=');
  Printf.printf "[%s] %s\n" id title;
  print_endline (String.make 78 '=');
  Printf.printf "Paper claim: %s\n\n" claim

let row widths cells =
  let padded =
    List.map2
      (fun w c ->
        if String.length c >= w then c else c ^ String.make (w - String.length c) ' ')
      widths cells
  in
  print_endline (String.concat "  " padded)

let table widths header rows =
  row widths header;
  hr (List.fold_left ( + ) 0 widths + (2 * (List.length widths - 1)));
  List.iter (row widths) rows

let f1 x = Printf.sprintf "%.1f" x
let f2 x = Printf.sprintf "%.2f" x
let f0 x = Printf.sprintf "%.0f" x
let i d = string_of_int d
