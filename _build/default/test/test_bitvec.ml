(* Unit and property tests for the Bitvec substrate. *)

let bv = Alcotest.testable Bitvec.pp Bitvec.equal

let check_bv = Alcotest.check bv

let test_make_masks () =
  check_bv "mask to 8 bits" (Bitvec.of_int ~width:8 0x34)
    (Bitvec.of_int ~width:8 0x1234);
  check_bv "width 1" (Bitvec.of_int ~width:1 1) (Bitvec.of_int ~width:1 3);
  Alcotest.check_raises "width 0 rejected"
    (Invalid_argument "Bitvec.make: width 0 out of [1;64]") (fun () ->
      ignore (Bitvec.make ~width:0 0L))

let test_signed_views () =
  let v = Bitvec.of_int ~width:8 0xFF in
  Alcotest.(check int) "signed -1" (-1) (Bitvec.to_int v);
  Alcotest.(check int) "unsigned 255" 255 (Bitvec.to_int_unsigned v);
  let w = Bitvec.of_int ~width:64 (-1) in
  Alcotest.(check int) "64-bit signed" (-1) (Bitvec.to_int w)

let test_arith () =
  let a = Bitvec.of_int ~width:8 200 and b = Bitvec.of_int ~width:8 100 in
  Alcotest.(check int) "wrapping add" 44
    (Bitvec.to_int_unsigned (Bitvec.add a b));
  Alcotest.(check int) "sub" 100 (Bitvec.to_int_unsigned (Bitvec.sub a b));
  Alcotest.(check int) "mul wraps" ((200 * 100) land 0xFF)
    (Bitvec.to_int_unsigned (Bitvec.mul a b))

let test_division_conventions () =
  let w = 16 in
  let z = Bitvec.zero w and x = Bitvec.of_int ~width:w 1234 in
  check_bv "x/0 = all ones" (Bitvec.ones w) (Bitvec.udiv x z);
  check_bv "x%0 = x" x (Bitvec.urem x z);
  check_bv "sdiv by 0" (Bitvec.ones w) (Bitvec.sdiv x z);
  let minint = Bitvec.of_int ~width:8 (-128) in
  let minus1 = Bitvec.of_int ~width:8 (-1) in
  check_bv "INT_MIN / -1 wraps" minint (Bitvec.sdiv minint minus1);
  check_bv "INT_MIN %% -1 = 0" (Bitvec.zero 8) (Bitvec.srem minint minus1)

let test_shifts () =
  let x = Bitvec.of_int ~width:8 0x81 in
  Alcotest.(check int) "shl" 0x04
    (Bitvec.to_int_unsigned (Bitvec.shl x (Bitvec.of_int ~width:8 2)));
  Alcotest.(check int) "lshr" 0x40
    (Bitvec.to_int_unsigned (Bitvec.lshr x (Bitvec.of_int ~width:8 1)));
  Alcotest.(check int) "ashr keeps sign" 0xC0
    (Bitvec.to_int_unsigned (Bitvec.ashr x (Bitvec.of_int ~width:8 1)));
  Alcotest.(check int) "shift >= width gives 0" 0
    (Bitvec.to_int_unsigned (Bitvec.shl x (Bitvec.of_int ~width:8 8)));
  Alcotest.(check int) "ashr >= width gives sign" 0xFF
    (Bitvec.to_int_unsigned (Bitvec.ashr x (Bitvec.of_int ~width:8 200)))

let test_comparisons () =
  let a = Bitvec.of_int ~width:8 0xFF and b = Bitvec.of_int ~width:8 1 in
  Alcotest.(check bool) "unsigned 255 > 1" false (Bitvec.ult a b);
  Alcotest.(check bool) "signed -1 < 1" true (Bitvec.slt a b);
  Alcotest.(check bool) "ule reflexive" true (Bitvec.ule a a);
  Alcotest.(check bool) "sle reflexive" true (Bitvec.sle a a)

let test_extract_concat () =
  let x = Bitvec.of_int ~width:16 0xABCD in
  check_bv "hi byte" (Bitvec.of_int ~width:8 0xAB)
    (Bitvec.extract ~hi:15 ~lo:8 x);
  check_bv "lo byte" (Bitvec.of_int ~width:8 0xCD)
    (Bitvec.extract ~hi:7 ~lo:0 x);
  check_bv "concat roundtrip" x
    (Bitvec.concat (Bitvec.extract ~hi:15 ~lo:8 x)
       (Bitvec.extract ~hi:7 ~lo:0 x));
  Alcotest.(check bool) "bit 15" true (Bitvec.bit 15 x);
  Alcotest.(check bool) "bit 14" false (Bitvec.bit 14 x)

let test_resize () =
  let x = Bitvec.of_int ~width:8 0x80 in
  check_bv "sext" (Bitvec.of_int ~width:16 0xFF80)
    (Bitvec.sign_extend ~width:16 x);
  check_bv "zext" (Bitvec.of_int ~width:16 0x0080)
    (Bitvec.zero_extend ~width:16 x);
  check_bv "resize truncates" (Bitvec.of_int ~width:4 0)
    (Bitvec.resize ~signed:true ~width:4 x)

let test_popcount_sigbits () =
  Alcotest.(check int) "popcount" 8
    (Bitvec.popcount (Bitvec.of_int ~width:16 0xFF00));
  Alcotest.(check int) "significant_bits of 5" 3
    (Bitvec.significant_bits (Bitvec.of_int ~width:32 5));
  Alcotest.(check int) "significant_bits of 0" 1
    (Bitvec.significant_bits (Bitvec.zero 32))

(* --- qcheck properties --- *)

let arb_width = QCheck.Gen.int_range 1 64

let arb_bv =
  QCheck.make
    ~print:(fun bv -> Bitvec.to_string bv)
    QCheck.Gen.(
      arb_width >>= fun w ->
      map (fun bits -> Bitvec.of_int64 ~width:w bits) int64)

let arb_bv_pair =
  QCheck.make
    ~print:(fun (a, b) -> Bitvec.to_string a ^ ", " ^ Bitvec.to_string b)
    QCheck.Gen.(
      arb_width >>= fun w ->
      map2
        (fun a b -> (Bitvec.of_int64 ~width:w a, Bitvec.of_int64 ~width:w b))
        int64 int64)

let prop_add_commutes =
  QCheck.Test.make ~name:"add commutes" ~count:500 arb_bv_pair (fun (a, b) ->
      Bitvec.equal (Bitvec.add a b) (Bitvec.add b a))

let prop_sub_inverse =
  QCheck.Test.make ~name:"(a+b)-b = a" ~count:500 arb_bv_pair (fun (a, b) ->
      Bitvec.equal (Bitvec.sub (Bitvec.add a b) b) a)

let prop_neg_involution =
  QCheck.Test.make ~name:"neg(neg a) = a" ~count:500 arb_bv (fun a ->
      Bitvec.equal (Bitvec.neg (Bitvec.neg a)) a)

let prop_not_involution =
  QCheck.Test.make ~name:"not(not a) = a" ~count:500 arb_bv (fun a ->
      Bitvec.equal (Bitvec.lognot (Bitvec.lognot a)) a)

let prop_udiv_urem =
  QCheck.Test.make ~name:"a = b*(a u/ b) + (a u% b)" ~count:500 arb_bv_pair
    (fun (a, b) ->
      QCheck.assume (not (Bitvec.is_zero b));
      Bitvec.equal a (Bitvec.add (Bitvec.mul b (Bitvec.udiv a b)) (Bitvec.urem a b)))

let prop_sdiv_srem =
  QCheck.Test.make ~name:"a = b*(a s/ b) + (a s% b)" ~count:500 arb_bv_pair
    (fun (a, b) ->
      QCheck.assume (not (Bitvec.is_zero b));
      Bitvec.equal a (Bitvec.add (Bitvec.mul b (Bitvec.sdiv a b)) (Bitvec.srem a b)))

let prop_signed_unsigned_views =
  QCheck.Test.make ~name:"signed and unsigned views agree mod 2^w" ~count:500
    arb_bv (fun a ->
      let w = Bitvec.width a in
      Bitvec.equal a (Bitvec.of_int64 ~width:w (Bitvec.to_int64_signed a)))

let prop_extract_concat =
  QCheck.Test.make ~name:"concat of split halves restores value" ~count:500
    (QCheck.make
       QCheck.Gen.(
         int_range 2 64 >>= fun w ->
         map (fun bits -> Bitvec.of_int64 ~width:w bits) int64))
    (fun a ->
      let w = Bitvec.width a in
      let mid = w / 2 in
      let hi = Bitvec.extract ~hi:(w - 1) ~lo:mid a in
      let lo = Bitvec.extract ~hi:(mid - 1) ~lo:0 a in
      Bitvec.equal a (Bitvec.concat hi lo))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_add_commutes; prop_sub_inverse; prop_neg_involution;
      prop_not_involution; prop_udiv_urem; prop_sdiv_srem;
      prop_signed_unsigned_views; prop_extract_concat ]

let suite =
  ( "bitvec",
    [ Alcotest.test_case "make masks" `Quick test_make_masks;
      Alcotest.test_case "signed views" `Quick test_signed_views;
      Alcotest.test_case "arithmetic" `Quick test_arith;
      Alcotest.test_case "division conventions" `Quick
        test_division_conventions;
      Alcotest.test_case "shifts" `Quick test_shifts;
      Alcotest.test_case "comparisons" `Quick test_comparisons;
      Alcotest.test_case "extract/concat" `Quick test_extract_concat;
      Alcotest.test_case "resize" `Quick test_resize;
      Alcotest.test_case "popcount/significant bits" `Quick
        test_popcount_sigbits ]
    @ qcheck_cases )
