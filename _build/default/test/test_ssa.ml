(* SSA construction and CFG analysis structural tests: dominance
   relations, dominance frontiers, phi placement at joins and loop
   headers. *)

let lower src ~entry =
  let program = Typecheck.parse_and_check src in
  fst (Simplify.simplify (Lower.lower_program program ~entry).Lower.func)

let diamond_func =
  lower
    "int f(int a, int b) { int r; if (a < b) { r = b - a; } else { r = a - b; } return r + 1; }"
    ~entry:"f"

let loop_func =
  lower
    "int f(int n) { int s = 0; int i = 0; while (i < n) { s = s + i; i = i + 1; } return s; }"
    ~entry:"f"

let test_dominance_relations () =
  let cfg = Cfg.build diamond_func in
  let entry = diamond_func.Cir.fn_entry in
  (* entry dominates all; no other block dominates entry *)
  for b = 0 to Cir.num_blocks diamond_func - 1 do
    if Cfg.reachable cfg b then begin
      Alcotest.(check bool) "entry dominates all" true
        (Cfg.dominates cfg entry b);
      if b <> entry then
        Alcotest.(check bool) "nothing dominates entry" false
          (Cfg.dominates cfg b entry)
    end
  done;
  (* dominance is reflexive and antisymmetric *)
  for b = 0 to Cir.num_blocks diamond_func - 1 do
    if Cfg.reachable cfg b then
      Alcotest.(check bool) "reflexive" true (Cfg.dominates cfg b b)
  done

let test_branch_arms_not_dominating_join () =
  let cfg = Cfg.build diamond_func in
  (* the two arms of the diamond must not dominate the join block *)
  let entry_blk = Cir.block diamond_func diamond_func.Cir.fn_entry in
  match entry_blk.Cir.term with
  | Cir.T_branch { if_true; if_false; _ } ->
    let join =
      match (Cir.block diamond_func if_true).Cir.term with
      | Cir.T_jump j -> j
      | _ -> Alcotest.fail "diamond arm should jump to join"
    in
    Alcotest.(check bool) "then-arm !dom join" false
      (Cfg.dominates cfg if_true join);
    Alcotest.(check bool) "else-arm !dom join" false
      (Cfg.dominates cfg if_false join);
    (* and the join is in both arms' dominance frontier *)
    let df = Cfg.dominance_frontiers cfg in
    Alcotest.(check bool) "join in DF(then)" true (List.mem join df.(if_true));
    Alcotest.(check bool) "join in DF(else)" true (List.mem join df.(if_false))
  | _ -> Alcotest.fail "expected entry to branch"

let test_phi_at_join () =
  let ssa = Ssa.of_func diamond_func in
  Alcotest.(check (list int)) "ssa is valid" [] (Ssa.verify ssa);
  (* exactly the one merged variable (r) gets a phi at the join *)
  let total_phis =
    Array.fold_left (fun acc l -> acc + List.length l) 0 ssa.Ssa.phis
  in
  Alcotest.(check int) "one phi for the diamond" 1 total_phis;
  (* with two incoming sources *)
  Array.iter
    (List.iter (fun (phi : Ssa.phi) ->
         Alcotest.(check int) "two-way phi" 2 (List.length phi.Ssa.p_srcs)))
    ssa.Ssa.phis

let test_phi_at_loop_header () =
  let ssa = Ssa.of_func loop_func in
  Alcotest.(check (list int)) "ssa is valid" [] (Ssa.verify ssa);
  let cfg = Cfg.build loop_func in
  let loops = Cfg.natural_loops cfg in
  Alcotest.(check int) "one loop" 1 (List.length loops);
  let header = (List.hd loops).Cfg.header in
  (* both s and i flow around the back edge: two phis at the header *)
  Alcotest.(check int) "two loop-carried phis" 2
    (List.length ssa.Ssa.phis.(header))

let test_ssa_single_assignment_per_definition () =
  (* after SSA, no register in the instruction stream is written twice *)
  let ssa = Ssa.of_func loop_func in
  let seen = Hashtbl.create 32 in
  Array.iter
    (fun blk ->
      List.iter
        (fun instr ->
          match Cir.def_of instr with
          | Some r ->
            Alcotest.(check bool)
              (Printf.sprintf "r%d defined once" r)
              false (Hashtbl.mem seen r);
            Hashtbl.replace seen r ()
          | None -> ())
        blk.Cir.instrs)
    ssa.Ssa.func.Cir.fn_blocks

let test_rpo_starts_at_entry () =
  let cfg = Cfg.build loop_func in
  Alcotest.(check int) "rpo head is entry" loop_func.Cir.fn_entry
    cfg.Cfg.rpo.(0);
  (* rpo visits each reachable block exactly once *)
  let sorted = Array.to_list cfg.Cfg.rpo |> List.sort_uniq compare in
  Alcotest.(check int) "no duplicates" (Array.length cfg.Cfg.rpo)
    (List.length sorted)

let test_unreachable_blocks_excluded () =
  (* lowering creates dead continuation blocks after return/break; the
     CFG marks them unreachable (pre-simplify) *)
  let program =
    Typecheck.parse_and_check
      "int f(int a) { if (a > 0) { return 1; } return 2; }"
  in
  let raw = (Lower.lower_program program ~entry:"f").Lower.func in
  let cfg = Cfg.build raw in
  let unreachable = ref 0 in
  for b = 0 to Cir.num_blocks raw - 1 do
    if not (Cfg.reachable cfg b) then incr unreachable
  done;
  Alcotest.(check bool) "some dead blocks before simplify" true
    (!unreachable > 0);
  let simplified, _ = Simplify.simplify raw in
  let cfg' = Cfg.build simplified in
  for b = 0 to Cir.num_blocks simplified - 1 do
    Alcotest.(check bool) "all blocks reachable after simplify" true
      (Cfg.reachable cfg' b)
  done

let suite =
  ( "ssa-cfg",
    [ Alcotest.test_case "dominance relations" `Quick
        test_dominance_relations;
      Alcotest.test_case "diamond dominance frontier" `Quick
        test_branch_arms_not_dominating_join;
      Alcotest.test_case "phi at join" `Quick test_phi_at_join;
      Alcotest.test_case "phi at loop header" `Quick test_phi_at_loop_header;
      Alcotest.test_case "single assignment" `Quick
        test_ssa_single_assignment_per_definition;
      Alcotest.test_case "reverse postorder" `Quick test_rpo_starts_at_entry;
      Alcotest.test_case "unreachable block handling" `Quick
        test_unreachable_blocks_excluded ] )
