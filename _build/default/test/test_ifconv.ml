(* If-conversion tests: shape recognition, semantic preservation on the
   workload suite, store predication, and the E2 payoff — a control-bound
   loop becomes pipelineable. *)

let lower src ~entry =
  let program = Typecheck.parse_and_check src in
  fst (Simplify.simplify (Lower.lower_program program ~entry).Lower.func)

let run_func func args =
  let outcome = Cir_interp.run func ~args:(Design.int_args args) in
  Option.map Bitvec.to_int outcome.Cir_interp.return_value

let test_triangle_conversion () =
  let func =
    lower "int f(int a, int b) { int r = a; if (a < b) { r = b; } return r; }"
      ~entry:"f"
  in
  let converted, n = Ifconv.convert func in
  Alcotest.(check int) "one branch converted" 1 n;
  (* max via if becomes branch-free *)
  let has_branch =
    Array.exists
      (fun blk ->
        match blk.Cir.term with Cir.T_branch _ -> true | _ -> false)
      converted.Cir.fn_blocks
  in
  Alcotest.(check bool) "no branches remain" false has_branch;
  List.iter
    (fun (a, b) ->
      Alcotest.(check (option int)) "max preserved" (Some (max a b))
        (run_func converted [ a; b ]))
    [ (3, 7); (7, 3); (-5, -2) ]

let test_diamond_conversion () =
  let func =
    lower
      "int f(int a, int b) { int r; if (a < b) { r = b - a; } else { r = a - b; } return r; }"
      ~entry:"f"
  in
  let converted, n = Ifconv.convert func in
  Alcotest.(check bool) "at least one conversion" true (n >= 1);
  List.iter
    (fun (a, b) ->
      Alcotest.(check (option int)) "abs-diff preserved" (Some (abs (a - b)))
        (run_func converted [ a; b ]))
    [ (3, 7); (7, 3); (10, 10) ]

let test_store_predication () =
  (* a conditional store must not fire on the not-taken path *)
  let func =
    lower
      {|
      int buf[4];
      int f(int a) {
        buf[1] = 100;
        if (a > 0) { buf[1] = a; }
        return buf[1];
      }
      |}
      ~entry:"f"
  in
  let converted, n = Ifconv.convert func in
  Alcotest.(check bool) "converted" true (n >= 1);
  Alcotest.(check (option int)) "taken path stores" (Some 42)
    (run_func converted [ 42 ]);
  Alcotest.(check (option int)) "not-taken path preserves memory" (Some 100)
    (run_func converted [ -5 ])

let test_workload_equivalence () =
  List.iter
    (fun (w : Workloads.t) ->
      let func = lower w.Workloads.source ~entry:w.Workloads.entry in
      let converted, _ = Ifconv.convert func in
      List.iter
        (fun args ->
          Alcotest.(check (option int))
            (Printf.sprintf "ifconv preserves %s" w.Workloads.name)
            (Some (Workloads.reference w args))
            (run_func converted args))
        w.Workloads.arg_sets)
    Workloads.sequential

let test_enables_pipelining () =
  (* the E2 control-flow-bound loop: unpipelineable before, pipelineable
     after if-conversion *)
  let src =
    {|
    int data[16];
    int f(int n) {
      int acc = 0;
      for (int i = 0; i < 16; i = i + 1) {
        if (data[i] > n) { acc = acc + 1; } else { acc = acc - data[i]; }
      }
      return acc;
    }
    |}
  in
  let func = lower src ~entry:"f" in
  (match Pipeline.modulo_schedule func with
  | exception Pipeline.Irregular _ -> ()
  | _ -> Alcotest.fail "expected the raw loop to be irregular");
  let converted, n = Ifconv.convert func in
  Alcotest.(check bool) "branch eliminated" true (n >= 1);
  let r = Pipeline.modulo_schedule converted in
  Alcotest.(check bool)
    (Printf.sprintf "pipelined after conversion (II=%d, speedup %.2f)"
       r.Pipeline.ii r.Pipeline.speedup)
    true
    (r.Pipeline.speedup > 1.0)

let test_nested_if_fixpoint () =
  let func =
    lower
      {|
      int f(int a, int b, int c) {
        int r = 0;
        if (a > 0) { r = r + 1; }
        if (b > 0) { r = r + 2; }
        if (c > 0) { r = r + 4; }
        return r;
      }
      |}
      ~entry:"f"
  in
  let converted, n = Ifconv.convert func in
  Alcotest.(check int) "all three triangles converted" 3 n;
  List.iter
    (fun (a, b, c) ->
      let expected =
        (if a > 0 then 1 else 0) + (if b > 0 then 2 else 0)
        + if c > 0 then 4 else 0
      in
      Alcotest.(check (option int)) "bitmask preserved" (Some expected)
        (run_func converted [ a; b; c ]))
    [ (1, 1, 1); (0, 1, 0); (-1, -1, 5) ]

let suite =
  ( "ifconv",
    [ Alcotest.test_case "triangle conversion" `Quick test_triangle_conversion;
      Alcotest.test_case "diamond conversion" `Quick test_diamond_conversion;
      Alcotest.test_case "store predication" `Quick test_store_predication;
      Alcotest.test_case "workload equivalence" `Quick
        test_workload_equivalence;
      Alcotest.test_case "enables pipelining" `Quick test_enables_pipelining;
      Alcotest.test_case "nested if fixpoint" `Quick test_nested_if_fixpoint ] )
