(* IR layer tests: lowering correctness (AST interp == CIR interp == SSA
   run), CFG/dominators, SSA invariants, dependence graphs, bitwidth
   inference, pointer analysis, loop transformations. *)

let lower_entry src ~entry =
  let program = Typecheck.parse_and_check src in
  (Lower.lower_program program ~entry).Lower.func

(* Workloads used for equivalence testing; each pairs a source with the
   entry name and a few argument vectors. *)
let equivalence_workloads =
  [ ( "gcd",
      "int gcd(int a, int b) { while (b != 0) { int t = b; b = a % b; a = t; } return a; }",
      "gcd", [ [ 54; 24 ]; [ 7; 13 ]; [ 0; 5 ]; [ 270; 192 ] ] );
    ( "fib",
      "int fib(int n) { int a = 0; int b = 1; for (int i = 0; i < n; i = i + 1) { int t = a + b; a = b; b = t; } return a; }",
      "fib", [ [ 0 ]; [ 1 ]; [ 10 ]; [ 20 ] ] );
    ( "fir",
      {|
      int coeff[4] = {1, 2, 3, 4};
      int fir(int x0, int x1, int x2, int x3) {
        int window[4];
        window[0] = x0; window[1] = x1; window[2] = x2; window[3] = x3;
        int acc = 0;
        for (int i = 0; i < 4; i = i + 1) { acc = acc + coeff[i] * window[i]; }
        return acc;
      }
      |},
      "fir", [ [ 1; 2; 3; 4 ]; [ 0; 0; 0; 0 ]; [ 9; -3; 7; 5 ] ] );
    ( "inlined helpers",
      {|
      int square(int x) { return x * x; }
      int cube(int x) { return square(x) * x; }
      int f(int a, int b) { return cube(a) + square(b); }
      |},
      "f", [ [ 2; 3 ]; [ 5; 1 ]; [ -2; 4 ] ] );
    ( "short circuit with side effects",
      {|
      int g;
      int bump(int v) { g = g + v; return v; }
      int f(int a) {
        int r = (a > 0 && bump(a) > 2) ? 10 : 20;
        return r + g;
      }
      |},
      "f", [ [ 0 ]; [ 1 ]; [ 5 ] ] );
    ( "nested loops + break/continue",
      {|
      int f(int n) {
        int s = 0;
        for (int i = 0; i < n; i = i + 1) {
          if (i == 7) { break; }
          for (int j = 0; j < i; j = j + 1) {
            if (j % 2 == 0) { continue; }
            s = s + i * j;
          }
        }
        return s;
      }
      |},
      "f", [ [ 0 ]; [ 5 ]; [ 12 ] ] );
    ( "global state machine",
      {|
      int state = 0;
      int hist[8];
      int stepfn(int input) {
        hist[state % 8] = input;
        if (input > 10) { state = state + 2; } else { state = state + 1; }
        return state;
      }
      int f(int a, int b) { stepfn(a); stepfn(b); return state + hist[1]; }
      |},
      "f", [ [ 1; 2 ]; [ 11; 3 ]; [ 20; 30 ] ] ) ]

let interp_result src ~entry ~args =
  Interp.run_int src ~entry ~args

let cir_result func ~args =
  let outcome =
    Cir_interp.run func ~args:(List.map (Bitvec.of_int ~width:64) args)
  in
  Bitvec.to_int (Option.get outcome.Cir_interp.return_value)

let test_lowering_equivalence () =
  List.iter
    (fun (name, src, entry, arg_sets) ->
      let func = lower_entry src ~entry in
      List.iter
        (fun args ->
          let expected = interp_result src ~entry ~args in
          let got = cir_result func ~args in
          Alcotest.(check int)
            (Printf.sprintf "%s%s" name
               (String.concat "," (List.map string_of_int args)))
            expected got)
        arg_sets)
    equivalence_workloads

let test_ssa_equivalence () =
  List.iter
    (fun (name, src, entry, arg_sets) ->
      let func = lower_entry src ~entry in
      let ssa = Ssa.of_func func in
      Alcotest.(check (list int))
        (name ^ " ssa verifies") [] (Ssa.verify ssa);
      List.iter
        (fun args ->
          let expected = interp_result src ~entry ~args in
          let got =
            Ssa.run ssa ~args:(List.map (Bitvec.of_int ~width:64) args)
          in
          Alcotest.(check int)
            (name ^ " ssa run")
            expected
            (Bitvec.to_int (Option.get got)))
        arg_sets)
    equivalence_workloads

let test_cfg_dominators () =
  let func =
    lower_entry
      "int f(int n) { int s = 0; while (n > 0) { if (n % 2 == 0) { s = s + 1; } n = n - 1; } return s; }"
      ~entry:"f"
  in
  let cfg = Cfg.build func in
  (* entry dominates everything reachable *)
  for b = 0 to Cir.num_blocks func - 1 do
    if Cfg.reachable cfg b then
      Alcotest.(check bool)
        (Printf.sprintf "entry dominates B%d" b)
        true
        (Cfg.dominates cfg func.Cir.fn_entry b)
  done;
  let loops = Cfg.natural_loops cfg in
  Alcotest.(check int) "one natural loop" 1 (List.length loops);
  let loop = List.hd loops in
  Alcotest.(check bool) "header in body" true
    (List.mem loop.Cfg.header loop.Cfg.body);
  Alcotest.(check bool) "latch in body" true
    (List.mem loop.Cfg.latch loop.Cfg.body)

let test_dep_graph () =
  let func =
    lower_entry
      {|
      int mem[4];
      int f(int a, int b) {
        int x = a + b;
        int y = a - b;
        int z = x * y;
        mem[0] = z;
        int w = mem[1];
        return z + w;
      }
      |}
      ~entry:"f"
  in
  (* collect all instructions of the function body in order *)
  let instrs =
    Array.to_list func.Cir.fn_blocks
    |> List.concat_map (fun blk -> blk.Cir.instrs)
  in
  let g = Dep.of_instrs instrs in
  Alcotest.(check bool) "has edges" true (List.length g.Dep.edges > 0);
  (* every RAW edge goes forward *)
  List.iter
    (fun e -> Alcotest.(check bool) "edges go forward" true (e.Dep.src < e.Dep.dst))
    g.Dep.edges;
  let cp = Dep.critical_path g in
  Alcotest.(check bool) "critical path between 3 and length" true
    (cp >= 3 && cp <= List.length instrs);
  (* renaming can only shorten or keep the critical path *)
  let g' = Dep.of_instrs_renamed instrs in
  Alcotest.(check bool) "renamed critical path <= original" true
    (Dep.critical_path g' <= cp)

let test_store_load_ordering () =
  let func =
    lower_entry
      {|
      int mem[4];
      int f(int a) {
        mem[0] = a;
        int x = mem[0];
        mem[0] = x + 1;
        return mem[0];
      }
      |}
      ~entry:"f"
  in
  let instrs =
    Array.to_list func.Cir.fn_blocks
    |> List.concat_map (fun blk -> blk.Cir.instrs)
  in
  let g = Dep.of_instrs instrs in
  let mem_edges = List.filter (fun e -> e.Dep.kind = Dep.Mem) g.Dep.edges in
  Alcotest.(check bool) "store/load ordering edges exist" true
    (List.length mem_edges >= 3)

let test_bitwidth () =
  let func =
    lower_entry
      {|
      int f(int selector) {
        int flag = selector > 3;          /* needs 1 bit */
        int nibble = selector & 15;       /* needs 4 bits */
        int sum = nibble + nibble;        /* needs 5 bits */
        return flag + sum;
      }
      |}
      ~entry:"f"
  in
  let r = Bitwidth.infer func in
  (* all inferred widths are within declared widths *)
  Array.iteri
    (fun i w ->
      Alcotest.(check bool) "within declared" true (w <= r.Bitwidth.declared.(i)))
    r.Bitwidth.widths;
  (* narrowed area must not exceed declared area *)
  let declared_area = Bitwidth.datapath_area func ~widths:r.Bitwidth.declared in
  let narrowed_area = Bitwidth.datapath_area func ~widths:r.Bitwidth.widths in
  Alcotest.(check bool) "narrowing reduces datapath area" true
    (narrowed_area < declared_area)

let test_bitwidth_soundness_loop () =
  (* an accumulator in a loop must keep enough bits *)
  let src =
    "int f(void) { int s = 0; for (int i = 0; i < 100; i = i + 1) { s = s + 100; } return s; }"
  in
  let func = lower_entry src ~entry:"f" in
  let r = Bitwidth.infer func in
  (* result is 10000, needs 14 bits; find the return operand's register *)
  let ret_reg =
    Array.to_list func.Cir.fn_blocks
    |> List.find_map (fun blk ->
           match blk.Cir.term with
           | Cir.T_return (Some (Cir.O_reg r)) -> Some r
           | _ -> None)
  in
  match ret_reg with
  | Some reg ->
    Alcotest.(check bool) "return register keeps >= 14 bits" true
      (r.Bitwidth.widths.(reg) >= 14)
  | None -> Alcotest.fail "no returning block found"

let test_pointer_analysis () =
  let program =
    Typecheck.parse_and_check
      {|
      int buf_a[8];
      int buf_b[8];
      void fill(int* dst, int v) { dst[0] = v; }
      int f(int which) {
        int* p = buf_a;
        int* q = buf_b;
        fill(p, 1);
        fill(q, 2);
        return buf_a[0] + buf_b[0];
      }
      |}
  in
  let r = Pointer.analyze program in
  Alcotest.(check (list string)) "p points to buf_a" [ "::buf_a" ]
    (Pointer.points_to r "f::p");
  Alcotest.(check (list string)) "q points to buf_b" [ "::buf_b" ]
    (Pointer.points_to r "f::q");
  Alcotest.(check bool) "p and q do not alias" false
    (Pointer.may_alias r "f::p" "f::q");
  (* fill's dst sees both *)
  Alcotest.(check bool) "dst may alias p" true
    (Pointer.may_alias r "fill::dst" "f::p");
  Alcotest.(check bool) "not fully partitionable (dst has 2 targets)" false
    (Pointer.fully_partitionable r)

let test_pointer_partitionable () =
  let program =
    Typecheck.parse_and_check
      {|
      int buf[8];
      int f(void) {
        int* p = buf;
        p[0] = 1;
        return p[0];
      }
      |}
  in
  let r = Pointer.analyze program in
  Alcotest.(check bool) "single-target pointers partition" true
    (Pointer.fully_partitionable r)

let test_unroll_equivalence () =
  let src =
    {|
    int coeff[4] = {1, 2, 3, 4};
    int f(int x) {
      int acc = x;
      for (int i = 0; i < 4; i = i + 1) { acc = acc + coeff[i] * i; }
      return acc;
    }
    |}
  in
  let program = Typecheck.parse_and_check src in
  let unrolled = Loopopt.unroll_all_program program in
  (* no For loops remain *)
  List.iter
    (fun f ->
      Alcotest.(check bool) "no for loops remain" false
        (Ast.exists_stmt
           (fun st ->
             match st.Ast.s with
             | Ast.For _ -> true
             | _ -> false)
           f))
    unrolled.Ast.funcs;
  List.iter
    (fun x ->
      let expected = Interp.run_int src ~entry:"f" ~args:[ x ] in
      let outcome =
        Interp.run unrolled ~entry:"f" ~args:[ Bitvec.of_int ~width:64 x ]
      in
      Alcotest.(check int) "unrolled equivalence" expected
        (Bitvec.to_int (Option.get outcome.Interp.return_value)))
    [ 0; 5; -3 ]

let test_partial_unroll_equivalence () =
  let src =
    {|
    int f(int x) {
      int acc = x;
      for (int i = 0; i < 8; i = i + 1) { acc = acc + i * i; }
      return acc;
    }
    |}
  in
  let program = Typecheck.parse_and_check src in
  let transform (f : Ast.func) =
    let body =
      List.map
        (fun st ->
          match st.Ast.s with
          | Ast.For (init, cond, step, body) ->
            Loopopt.partially_unroll_for ~factor:2 ~init ~cond ~step ~body
          | _ -> st)
        f.Ast.f_body
    in
    { f with Ast.f_body = body }
  in
  let program' =
    { program with Ast.funcs = List.map transform program.Ast.funcs }
  in
  List.iter
    (fun x ->
      let expected = Interp.run_int src ~entry:"f" ~args:[ x ] in
      let outcome =
        Interp.run program' ~entry:"f" ~args:[ Bitvec.of_int ~width:64 x ]
      in
      Alcotest.(check int) "partial unroll equivalence" expected
        (Bitvec.to_int (Option.get outcome.Interp.return_value)))
    [ 0; 4; 9 ]

let test_fusion_equivalence () =
  let src =
    {|
    int f(int a, int b) {
      int t = a + b;
      int u = t * 3;
      int v = u - a;
      return v;
    }
    |}
  in
  let program = Typecheck.parse_and_check src in
  let fused = Loopopt.fuse_program program in
  (* fused version has fewer statements *)
  let count_stmts (p : Ast.program) =
    let n = ref 0 in
    List.iter
      (fun f -> Ast.iter_func ~stmt:(fun _ -> incr n) ~expr:(fun _ -> ()) f)
      p.Ast.funcs;
    !n
  in
  Alcotest.(check bool) "fusion removes statements" true
    (count_stmts fused < count_stmts program);
  List.iter
    (fun (a, b) ->
      let expected = Interp.run_int src ~entry:"f" ~args:[ a; b ] in
      let outcome =
        Interp.run fused ~entry:"f"
          ~args:[ Bitvec.of_int ~width:64 a; Bitvec.of_int ~width:64 b ]
      in
      Alcotest.(check int) "fusion equivalence" expected
        (Bitvec.to_int (Option.get outcome.Interp.return_value)))
    [ (1, 2); (10, -5) ]

let test_fusion_soundness () =
  (* the classic swap: t = a+b; a = b; b = t — fusing t would change the
     meaning because a is reassigned between definition and use *)
  let src =
    "int f(int a, int b) { int t = a + b; a = b; b = t; return a * 1000 + b; }"
  in
  let program = Typecheck.parse_and_check src in
  let fused = Loopopt.fuse_program program in
  List.iter
    (fun (a, b) ->
      let expected = Interp.run_int src ~entry:"f" ~args:[ a; b ] in
      let outcome =
        Interp.run fused ~entry:"f"
          ~args:[ Bitvec.of_int ~width:64 a; Bitvec.of_int ~width:64 b ]
      in
      Alcotest.(check int) "swap pattern untouched by fusion" expected
        (Bitvec.to_int (Option.get outcome.Interp.return_value)))
    [ (3, 4); (10, -7) ];
  (* and fusion preserves every built-in workload *)
  List.iter
    (fun (w : Workloads.t) ->
      let fused = Loopopt.fuse_program (Workloads.parse w) in
      List.iter
        (fun args ->
          let expected = Workloads.reference w args in
          let outcome =
            Interp.run fused ~entry:w.Workloads.entry
              ~args:(List.map (Bitvec.of_int ~width:64) args)
          in
          Alcotest.(check int)
            ("fusion preserves " ^ w.Workloads.name)
            expected
            (Bitvec.to_int (Option.get outcome.Interp.return_value)))
        w.Workloads.arg_sets)
    Workloads.sequential

let test_recursion_rejected () =
  let src = "int f(int n) { if (n <= 0) { return 0; } return f(n - 1) + 1; }" in
  let program = Typecheck.parse_and_check src in
  match Lower.lower_program program ~entry:"f" with
  | exception Lower.Error _ -> ()
  | _ -> Alcotest.fail "expected lowering to reject recursion"

(* qcheck: random arithmetic expressions lower correctly *)
let prop_lower_random_arith =
  QCheck.Test.make ~name:"lowering preserves random arithmetic" ~count:150
    QCheck.(triple (int_range (-100) 100) (int_range (-100) 100) (int_range 1 30))
    (fun (a, b, c) ->
      let src =
        "int f(int a, int b, int c) { int t = (a * b + c) ^ (a >> 2); \
         return t % c + (a < b ? t : b - a); }"
      in
      let expected = Interp.run_int src ~entry:"f" ~args:[ a; b; c ] in
      let func = lower_entry src ~entry:"f" in
      cir_result func ~args:[ a; b; c ] = expected)

let suite =
  ( "ir",
    [ Alcotest.test_case "lowering equivalence" `Quick
        test_lowering_equivalence;
      Alcotest.test_case "ssa equivalence" `Quick test_ssa_equivalence;
      Alcotest.test_case "cfg dominators and loops" `Quick test_cfg_dominators;
      Alcotest.test_case "dependence graph" `Quick test_dep_graph;
      Alcotest.test_case "store/load ordering" `Quick test_store_load_ordering;
      Alcotest.test_case "bitwidth inference" `Quick test_bitwidth;
      Alcotest.test_case "bitwidth loop soundness" `Quick
        test_bitwidth_soundness_loop;
      Alcotest.test_case "pointer analysis" `Quick test_pointer_analysis;
      Alcotest.test_case "pointer partitionable" `Quick
        test_pointer_partitionable;
      Alcotest.test_case "full unroll equivalence" `Quick
        test_unroll_equivalence;
      Alcotest.test_case "partial unroll equivalence" `Quick
        test_partial_unroll_equivalence;
      Alcotest.test_case "assignment fusion equivalence" `Quick
        test_fusion_equivalence;
      Alcotest.test_case "fusion soundness (swap pattern)" `Quick
        test_fusion_soundness;
      Alcotest.test_case "recursion rejected by inliner" `Quick
        test_recursion_rejected;
      QCheck_alcotest.to_alcotest prop_lower_random_arith ] )
