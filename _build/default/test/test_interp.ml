(* Reference interpreter tests: sequential C semantics, memory, recursion,
   and the concurrent extensions (par, rendezvous channels, deadlock). *)

let run_int = Interp.run_int

let test_arith_and_control () =
  Alcotest.(check int) "gcd" 6
    (run_int
       "int gcd(int a, int b) { while (b != 0) { int t = b; b = a % b; a = t; } return a; }"
       ~entry:"gcd" ~args:[ 54; 24 ]);
  Alcotest.(check int) "fib iterative" 55
    (run_int
       "int fib(int n) { int a = 0; int b = 1; for (int i = 0; i < n; i = i + 1) { int t = a + b; a = b; b = t; } return a; }"
       ~entry:"fib" ~args:[ 10 ]);
  Alcotest.(check int) "ternary + logic" 1
    (run_int "int f(int x) { return x > 2 && x < 10 ? 1 : 0; }" ~entry:"f"
       ~args:[ 5 ])

let test_do_while_break_continue () =
  Alcotest.(check int) "do-while" 10
    (run_int
       "int f(void) { int i = 0; do { i = i + 1; } while (i < 10); return i; }"
       ~entry:"f" ~args:[]);
  Alcotest.(check int) "break" 5
    (run_int
       "int f(void) { int i = 0; while (1) { if (i == 5) { break; } i = i + 1; } return i; }"
       ~entry:"f" ~args:[]);
  Alcotest.(check int) "continue skips evens" 25
    (run_int
       "int f(void) { int s = 0; for (int i = 0; i < 10; i = i + 1) { if (i % 2 == 0) { continue; } s = s + i; } return s; }"
       ~entry:"f" ~args:[])

let test_arrays_and_pointers () =
  Alcotest.(check int) "local array sum" 30
    (run_int
       "int f(void) { int a[4]; for (int i = 0; i < 4; i = i + 1) { a[i] = i * 5; } return a[0] + a[1] + a[2] + a[3]; }"
       ~entry:"f" ~args:[]);
  Alcotest.(check int) "pointer swap" 1
    (run_int
       {|
       void swap(int* p, int* q) { int t = *p; *p = *q; *q = t; }
       int f(void) { int a = 3; int b = 7; swap(&a, &b); return a == 7 && b == 3; }
       |}
       ~entry:"f" ~args:[]);
  Alcotest.(check int) "pointer arithmetic walk" 60
    (run_int
       {|
       int f(void) {
         int a[3];
         a[0] = 10; a[1] = 20; a[2] = 30;
         int* p = a;
         int s = 0;
         for (int i = 0; i < 3; i = i + 1) { s = s + *(p + i); }
         return s;
       }
       |}
       ~entry:"f" ~args:[]);
  Alcotest.(check int) "array argument" 6
    (run_int
       {|
       int sum3(int a[3]) { return a[0] + a[1] + a[2]; }
       int f(void) { int v[3]; v[0] = 1; v[1] = 2; v[2] = 3; return sum3(v); }
       |}
       ~entry:"f" ~args:[])

let test_globals () =
  let program =
    Typecheck.parse_and_check
      {|
      int coeff[4] = {1, 2, 3, 4};
      int total = 0;
      int f(void) {
        for (int i = 0; i < 4; i = i + 1) { total = total + coeff[i]; }
        return total;
      }
      |}
  in
  let outcome = Interp.run program ~entry:"f" ~args:[] in
  Alcotest.(check int) "return" 10
    (Bitvec.to_int (Option.get outcome.return_value));
  Alcotest.(check int) "global readback" 10
    (Bitvec.to_int (Interp.read_global outcome "total"));
  let arr = Interp.read_global_array outcome "coeff" in
  Alcotest.(check int) "array readback" 4 (Bitvec.to_int arr.(3))

let test_recursion () =
  Alcotest.(check int) "factorial" 120
    (run_int
       "int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); }"
       ~entry:"fact" ~args:[ 5 ]);
  Alcotest.(check int) "mutual recursion" 1
    (run_int
       {|
       int is_odd(int n);
       int is_even(int n) { if (n == 0) { return 1; } return is_odd(n - 1); }
       int is_odd(int n) { if (n == 0) { return 0; } return is_even(n - 1); }
       int f(void) { return is_even(10); }
       |}
       ~entry:"f" ~args:[])

let test_char_overflow () =
  Alcotest.(check int) "char wraps at 8 bits" (-128)
    (run_int "int f(void) { char c = 127; c = c + 1; return c; }" ~entry:"f"
       ~args:[]);
  Alcotest.(check int) "unsigned char wraps to 0" 0
    (run_int
       "int f(void) { unsigned char c = 255; c = c + 1; return c; }"
       ~entry:"f" ~args:[])

let test_shift_and_mask_kernels () =
  Alcotest.(check int) "popcount" 10
    (run_int
       {|
       int popcount(unsigned int x) {
         int n = 0;
         while (x != 0u) { n = n + (int)(x & 1u); x = x >> 1; }
         return n;
       }
       |}
       ~entry:"popcount" ~args:[ 0xABCD ])

let test_par_and_channels () =
  Alcotest.(check int) "producer/consumer rendezvous" 30
    (run_int
       {|
       chan int c;
       int f(void) {
         int result = 0;
         par {
           { send(c, 10); send(c, 20); }
           { int a = recv(c); int b = recv(c); result = a + b; }
         }
         return result;
       }
       |}
       ~entry:"f" ~args:[]);
  Alcotest.(check int) "three-stage pipeline" 42
    (run_int
       {|
       chan int c1;
       chan int c2;
       int f(void) {
         int result = 0;
         par {
           { send(c1, 20); }
           { int x = recv(c1); send(c2, x * 2 + 2); }
           { result = recv(c2); }
         }
         return result;
       }
       |}
       ~entry:"f" ~args:[])

let test_par_shared_memory () =
  Alcotest.(check int) "par branches see parent locals" 3
    (run_int
       {|
       int f(void) {
         int a = 0;
         int b = 0;
         par {
           { a = 1; }
           { b = 2; }
         }
         return a + b;
       }
       |}
       ~entry:"f" ~args:[])

let test_deadlock_detection () =
  let src =
    {|
    chan int c;
    int f(void) {
      int x = recv(c);
      return x;
    }
    |}
  in
  let program = Typecheck.parse_and_check src in
  match Interp.run program ~entry:"f" ~args:[] with
  | exception Interp.Deadlock -> ()
  | _ -> Alcotest.fail "expected deadlock"

let test_fuel_timeout () =
  let src = "int f(void) { while (1) { } return 0; }" in
  let program = Typecheck.parse_and_check src in
  match Interp.run ~fuel:1000 program ~entry:"f" ~args:[] with
  | exception Interp.Timeout -> ()
  | _ -> Alcotest.fail "expected timeout"

let test_division_semantics () =
  Alcotest.(check int) "C truncating division" (-3)
    (run_int "int f(void) { return (0 - 7) / 2; }" ~entry:"f" ~args:[]);
  Alcotest.(check int) "C remainder sign" (-1)
    (run_int "int f(void) { return (0 - 7) % 2; }" ~entry:"f" ~args:[])

(* qcheck: interpreter agrees with OCaml arithmetic on a random expression
   over bounded operands. *)
let prop_interp_matches_ocaml =
  QCheck.Test.make ~name:"interp matches OCaml int32 arithmetic" ~count:200
    QCheck.(triple (int_range (-1000) 1000) (int_range (-1000) 1000)
              (int_range 1 50))
    (fun (a, b, c) ->
      let src = "int f(int a, int b, int c) { return (a + b) * c - a / c + (b % c); }" in
      let expected =
        let ( +% ) x y = Int32.to_int (Int32.add (Int32.of_int x) (Int32.of_int y)) in
        ignore ( +% );
        (a + b) * c - (a / c) + (b mod c)
      in
      run_int src ~entry:"f" ~args:[ a; b; c ] = expected)

let suite =
  ( "interp",
    [ Alcotest.test_case "arith and control" `Quick test_arith_and_control;
      Alcotest.test_case "do-while/break/continue" `Quick
        test_do_while_break_continue;
      Alcotest.test_case "arrays and pointers" `Quick test_arrays_and_pointers;
      Alcotest.test_case "globals" `Quick test_globals;
      Alcotest.test_case "recursion" `Quick test_recursion;
      Alcotest.test_case "char overflow" `Quick test_char_overflow;
      Alcotest.test_case "shift/mask kernels" `Quick
        test_shift_and_mask_kernels;
      Alcotest.test_case "par and channels" `Quick test_par_and_channels;
      Alcotest.test_case "par shared memory" `Quick test_par_shared_memory;
      Alcotest.test_case "deadlock detection" `Quick test_deadlock_detection;
      Alcotest.test_case "fuel timeout" `Quick test_fuel_timeout;
      Alcotest.test_case "division semantics" `Quick test_division_semantics;
      QCheck_alcotest.to_alcotest prop_interp_matches_ocaml ] )
