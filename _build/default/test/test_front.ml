(* Frontend tests: lexer, parser, pretty round-trip, type checking,
   dialect restrictions. *)

let parse = Parser.parse_program
let check src = Typecheck.parse_and_check src

let test_lexer_basics () =
  let toks = Lexer.tokenize "int x = 0x1F + 'A';" in
  let kinds = List.map (fun (t : Lexer.tok) -> t.t) toks in
  Alcotest.(check int) "token count" 8 (List.length kinds);
  (match kinds with
  | [ KW "int"; ID "x"; ASSIGN; INT (31L, `Plain); PLUS; INT (65L, `Plain);
      SEMI; EOF ] -> ()
  | _ -> Alcotest.fail "unexpected token stream");
  ()

let test_lexer_comments_and_suffixes () =
  let toks =
    Lexer.tokenize "/* block \n comment */ 42u // line\n 7l 3ul"
  in
  match List.map (fun (t : Lexer.tok) -> t.t) toks with
  | [ INT (42L, `Unsigned); INT (7L, `Long); INT (3L, `Unsigned_long); EOF ]
    -> ()
  | _ -> Alcotest.fail "suffixes/comments mishandled"

let test_lexer_positions () =
  let toks = Lexer.tokenize "a\n  b" in
  match toks with
  | [ a; b; _eof ] ->
    Alcotest.(check int) "a line" 1 a.Lexer.tline;
    Alcotest.(check int) "b line" 2 b.Lexer.tline;
    Alcotest.(check int) "b col" 3 b.Lexer.tcol
  | _ -> Alcotest.fail "expected two tokens"

let test_parse_simple_function () =
  let p = parse "int add(int a, int b) { return a + b; }" in
  Alcotest.(check int) "one function" 1 (List.length p.funcs);
  match p.funcs with
  | [ f ] ->
    Alcotest.(check string) "name" "add" f.f_name;
    Alcotest.(check int) "params" 2 (List.length f.f_params)
  | _ -> Alcotest.fail "expected one function"

let test_parse_precedence () =
  let e = Parser.parse_expression "1 + 2 * 3" in
  (match e.e with
  | Ast.Binop (Ast.Add, _, { e = Ast.Binop (Ast.Mul, _, _); _ }) -> ()
  | _ -> Alcotest.fail "precedence wrong for 1 + 2 * 3");
  let e = Parser.parse_expression "1 << 2 + 3" in
  (match e.e with
  | Ast.Binop (Ast.Shl, _, { e = Ast.Binop (Ast.Add, _, _); _ }) -> ()
  | _ -> Alcotest.fail "precedence wrong for 1 << 2 + 3");
  let e = Parser.parse_expression "a = b = 3" in
  match e.e with
  | Ast.Assign (_, { e = Ast.Assign (_, _); _ }) -> ()
  | _ -> Alcotest.fail "assignment should associate right"

let test_parse_compound_assign () =
  let e = Parser.parse_expression "x += 4" in
  match e.e with
  | Ast.Assign ({ e = Ast.Var "x"; _ }, { e = Ast.Binop (Ast.Add, _, _); _ })
    -> ()
  | _ -> Alcotest.fail "+= should desugar to x = x + 4"

let test_parse_hw_extensions () =
  let p =
    parse
      {|
      chan int c;
      void main(void) {
        par {
          { send(c, 1); }
          { int x = recv(c); }
        }
        delay;
        constrain(1, 3) { int y = 0; y = y + 1; }
      }
      |}
  in
  Alcotest.(check int) "one channel" 1 (List.length p.chans);
  match p.funcs with
  | [ f ] -> (
    match f.f_body with
    | [ { s = Ast.Par [ _; _ ]; _ }; { s = Ast.Delay; _ };
        { s = Ast.Constrain (1, 3, _); _ } ] -> ()
    | _ -> Alcotest.fail "hw extension statements not parsed as expected")
  | _ -> Alcotest.fail "expected one function"

let test_parse_globals () =
  let p = parse "int tab[4] = {1, 2, 3, 4};\nint scale = 7;\n" in
  Alcotest.(check int) "two globals" 2 (List.length p.globals);
  match p.globals with
  | [ tab; scale ] ->
    Alcotest.(check string) "tab" "tab" tab.g_name;
    (match tab.g_init with
    | Some [ 1L; 2L; 3L; 4L ] -> ()
    | _ -> Alcotest.fail "tab initializer wrong");
    Alcotest.(check string) "scale" "scale" scale.g_name
  | _ -> Alcotest.fail "globals parse"

let test_pretty_roundtrip () =
  let src =
    {|
    int tab[4] = {1, 2, 3, 4};
    int f(int n) {
      int acc = 0;
      for (int i = 0; i < n; i = i + 1) {
        if (i % 2 == 0) { acc = acc + tab[i % 4]; } else { acc = acc - 1; }
      }
      while (acc > 100) { acc = acc / 2; }
      return acc;
    }
    |}
  in
  let p1 = parse src in
  let printed = Pretty.program_to_string p1 in
  let p2 = parse printed in
  let printed2 = Pretty.program_to_string p2 in
  Alcotest.(check string) "print . parse . print is stable" printed printed2

let test_typecheck_inserts_conversions () =
  let p = check "long f(int a, char b) { return a + b; }" in
  match p.funcs with
  | [ f ] -> (
    match f.f_body with
    | [ { s = Ast.Return (Some { e = Ast.Cast (Ctypes.Integer ik, _); ty; _ });
          _ } ] ->
      Alcotest.(check bool) "result cast to long" true
        (ik.kind = Ctypes.Long);
      Alcotest.(check string) "type annotation" "long" (Ctypes.to_string ty)
    | _ -> Alcotest.fail "expected return of a cast to long")
  | _ -> Alcotest.fail "one function expected"

let test_typecheck_promotion () =
  (* char + char computes at int width (integer promotion). *)
  let p = check "int f(char a, char b) { return a + b; }" in
  match p.funcs with
  | [ f ] -> (
    match f.f_body with
    | [ { s = Ast.Return (Some e); _ } ] ->
      Alcotest.(check string) "sum typed int" "int" (Ctypes.to_string e.ty)
    | _ -> Alcotest.fail "unexpected body")
  | _ -> Alcotest.fail "one function expected"

let expect_type_error src =
  match check src with
  | exception Typecheck.Error _ -> ()
  | _ -> Alcotest.fail ("expected type error for: " ^ src)

let test_typecheck_rejects () =
  expect_type_error "int f(void) { return x; }";
  expect_type_error "int f(int a) { a + 1 = 3; return 0; }";
  expect_type_error "int f(int a) { return g(a); }";
  expect_type_error "void f(int a) { return a; }";
  expect_type_error "int f(int a) { break; return a; }";
  expect_type_error "int f(int a) { int a; return a; }";
  expect_type_error "int f(int* p) { return p * 2; }"

let test_unsigned_semantics () =
  (* unsigned comparison differs from signed at the boundary *)
  Alcotest.(check int) "unsigned compare" 0
    (Interp.run_int
       "int f(void) { unsigned int x = 0 - 1; return x < 1u; }"
       ~entry:"f" ~args:[]);
  Alcotest.(check int) "signed compare" 1
    (Interp.run_int "int f(void) { int x = 0 - 1; return x < 1; }" ~entry:"f"
       ~args:[])

let test_dialect_table1 () =
  Alcotest.(check int) "eleven rows" 11 (List.length Dialect.table1);
  let names = List.map (fun (d : Dialect.t) -> d.name) Dialect.table1 in
  (* The paper's own Table 1 row order. *)
  Alcotest.(check (list string)) "table order"
    [ "Cones"; "HardwareC"; "Transmogrifier C"; "SystemC"; "Ocapi";
      "C2Verilog"; "Cyber (BDL)"; "Handel-C"; "SpecC"; "Bach C"; "CASH" ]
    names

let test_dialect_restrictions () =
  let ptr_prog = check "int f(int* p) { return *p; }" in
  Alcotest.(check bool) "cones rejects pointers" true
    (Dialect.check Dialect.cones ptr_prog <> []);
  Alcotest.(check bool) "c2verilog accepts pointers" true
    (Dialect.check Dialect.c2verilog ptr_prog = []);
  let rec_prog = check "int f(int n) { if (n <= 1) { return 1; } return n * f(n - 1); }" in
  Alcotest.(check bool) "cyber rejects recursion" true
    (Dialect.check Dialect.cyber rec_prog <> []);
  Alcotest.(check bool) "c2verilog accepts recursion" true
    (Dialect.check Dialect.c2verilog rec_prog = []);
  let while_prog = check "int f(int n) { while (n > 1) { n = n / 2; } return n; }" in
  Alcotest.(check bool) "cones rejects unbounded loops" true
    (Dialect.check Dialect.cones while_prog <> []);
  let bounded = check "int f(void) { int s = 0; for (int i = 0; i < 8; i = i + 1) { s = s + i; } return s; }" in
  Alcotest.(check bool) "cones accepts bounded loops" true
    (Dialect.check Dialect.cones bounded = []);
  let par_prog =
    check "chan int c;\nvoid f(void) { par { { send(c, 1); } { int x = recv(c); } } }"
  in
  Alcotest.(check bool) "handelc accepts par+channels" true
    (Dialect.check Dialect.handelc par_prog = []);
  Alcotest.(check bool) "cash rejects par" true
    (Dialect.check Dialect.cash par_prog <> [])

let test_loopform () =
  let p =
    parse "int f(void) { int s = 0; for (int i = 2; i < 10; i = i + 3) { s = s + i; } return s; }"
  in
  match p.funcs with
  | [ f ] -> (
    match f.f_body with
    | [ _; { s = Ast.For (init, cond, step, _); _ }; _ ] -> (
      let step =
        Option.map (fun e -> Ast.mk_stmt (Ast.Expr e)) step
      in
      ignore step;
      match
        Loopform.recognize ~init
          ~cond
          ~step:(match (List.nth f.f_body 1).s with
                 | Ast.For (_, _, s, _) -> s
                 | _ -> None)
      with
      | Some b ->
        Alcotest.(check int) "trip count" 3 (Option.get (Loopform.trip_count b));
        Alcotest.(check (list int)) "iteration values" [ 2; 5; 8 ]
          (Option.get (Loopform.iteration_values b))
      | None -> Alcotest.fail "loop not recognized")
    | _ -> Alcotest.fail "unexpected body shape")
  | _ -> Alcotest.fail "one function"

let suite =
  ( "front",
    [ Alcotest.test_case "lexer basics" `Quick test_lexer_basics;
      Alcotest.test_case "lexer comments/suffixes" `Quick
        test_lexer_comments_and_suffixes;
      Alcotest.test_case "lexer positions" `Quick test_lexer_positions;
      Alcotest.test_case "parse simple function" `Quick
        test_parse_simple_function;
      Alcotest.test_case "parse precedence" `Quick test_parse_precedence;
      Alcotest.test_case "parse compound assignment" `Quick
        test_parse_compound_assign;
      Alcotest.test_case "parse hw extensions" `Quick test_parse_hw_extensions;
      Alcotest.test_case "parse globals" `Quick test_parse_globals;
      Alcotest.test_case "pretty roundtrip" `Quick test_pretty_roundtrip;
      Alcotest.test_case "typecheck conversions" `Quick
        test_typecheck_inserts_conversions;
      Alcotest.test_case "typecheck promotion" `Quick test_typecheck_promotion;
      Alcotest.test_case "typecheck rejections" `Quick test_typecheck_rejects;
      Alcotest.test_case "unsigned semantics" `Quick test_unsigned_semantics;
      Alcotest.test_case "dialect table1" `Quick test_dialect_table1;
      Alcotest.test_case "dialect restrictions" `Quick
        test_dialect_restrictions;
      Alcotest.test_case "loopform recognition" `Quick test_loopform ] )
