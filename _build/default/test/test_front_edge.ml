(* Frontend edge cases: lexer corner forms, parser error reporting and
   grammar corners, type-conversion subtleties the hardware backends
   depend on. *)

let parse = Parser.parse_program
let check = Typecheck.parse_and_check
let run_int = Interp.run_int

let expect_parse_error src =
  match parse src with
  | exception (Parser.Error _ | Lexer.Error _) -> ()
  | _ -> Alcotest.fail ("expected a parse error for: " ^ src)

let test_parse_errors () =
  expect_parse_error "int f( { return 0; }";
  expect_parse_error "int f(void) { return 1 + ; }";
  expect_parse_error "int f(void) { if (1) return 2 }";
  expect_parse_error "int f(void) { int x[] = {1,2}; return 0; }";
  expect_parse_error "int f(void) { send(c); return 0; }";
  expect_parse_error "int 9bad(void) { return 0; }";
  expect_parse_error "int f(void) { return 0; } trailing";
  expect_parse_error "int f(void) { constrain(2) { } return 0; }"

let test_parse_error_positions () =
  match parse "int f(void) {\n  return 1 +\n;\n}" with
  | exception Parser.Error (_, loc) ->
    Alcotest.(check int) "error on line 3" 3 loc.Ast.line
  | _ -> Alcotest.fail "expected parse error"

let test_char_escapes () =
  Alcotest.(check int) "newline" 10
    (run_int "int f(void) { return '\\n'; }" ~entry:"f" ~args:[]);
  Alcotest.(check int) "tab" 9
    (run_int "int f(void) { return '\\t'; }" ~entry:"f" ~args:[]);
  Alcotest.(check int) "backslash" 92
    (run_int "int f(void) { return '\\\\'; }" ~entry:"f" ~args:[]);
  Alcotest.(check int) "nul" 0
    (run_int "int f(void) { return '\\0'; }" ~entry:"f" ~args:[])

let test_hex_and_suffixes () =
  Alcotest.(check int) "hex" 48879
    (run_int "int f(void) { return 0xBEEF; }" ~entry:"f" ~args:[]);
  Alcotest.(check int) "unsigned suffix comparison" 1
    (run_int "int f(void) { unsigned int x = 4294967295u; return x > 0u; }"
       ~entry:"f" ~args:[]);
  Alcotest.(check int) "long arithmetic" 1
    (run_int
       "int f(void) { long big = 5000000000l; return big > 4000000000l; }"
       ~entry:"f" ~args:[])

let test_dangling_else () =
  (* else binds to the nearest if *)
  Alcotest.(check int) "dangling else" 0
    (run_int
       "int f(int a) { if (a > 0) if (a > 10) return 1; else return 2; return 0; }"
       ~entry:"f" ~args:[ -5 ]);
  Alcotest.(check int) "inner else" 2
    (run_int
       "int f(int a) { if (a > 0) if (a > 10) return 1; else return 2; return 0; }"
       ~entry:"f" ~args:[ 5 ])

let test_comma_free_for_forms () =
  Alcotest.(check int) "empty for header" 10
    (run_int
       "int f(void) { int i = 0; for (;;) { i = i + 1; if (i == 10) { break; } } return i; }"
       ~entry:"f" ~args:[]);
  Alcotest.(check int) "expression init" 6
    (run_int
       "int f(void) { int i; int s = 0; for (i = 1; i <= 3; i = i + 1) { s = s + i; } return s; }"
       ~entry:"f" ~args:[])

let test_increment_forms () =
  (* both forms are assignment sugar (documented pre-increment values) *)
  Alcotest.(check int) "postfix statement" 3
    (run_int "int f(void) { int i = 2; i++; return i; }" ~entry:"f" ~args:[]);
  Alcotest.(check int) "prefix statement" 1
    (run_int "int f(void) { int i = 2; --i; return i; }" ~entry:"f" ~args:[]);
  Alcotest.(check int) "compound shift" 8
    (run_int "int f(void) { int i = 2; i <<= 2; return i; }" ~entry:"f"
       ~args:[])

let test_signedness_conversions () =
  (* unsigned op signed: usual arithmetic conversions make it unsigned *)
  Alcotest.(check int) "mixed comparison is unsigned" 0
    (run_int "int f(void) { unsigned int u = 1u; int s = 0 - 1; return s < u; }"
       ~entry:"f" ~args:[]);
  (* char -> unsigned char reinterpretation *)
  Alcotest.(check int) "char reinterpret" 255
    (run_int
       "int f(void) { char c = 0 - 1; unsigned char u = (unsigned char)c; return u; }"
       ~entry:"f" ~args:[]);
  (* short truncation *)
  Alcotest.(check int) "short truncation" (-32768)
    (run_int "int f(void) { short s = (short)32768; return s; }" ~entry:"f"
       ~args:[]);
  (* sign extension through widening *)
  Alcotest.(check int) "sign extension to long" 1
    (run_int "int f(void) { int x = 0 - 5; long l = x; return l == 0l - 5l; }"
       ~entry:"f" ~args:[])

let test_shift_result_types () =
  (* the result width of a shift is the promoted left operand's *)
  Alcotest.(check int) "char shift promotes to int" 1024
    (run_int "int f(void) { char c = 4; return c << 8; }" ~entry:"f" ~args:[])

let test_bool_type () =
  Alcotest.(check int) "bool stores 0/1" 1
    (run_int "int f(void) { bool b = 42; return b; }" ~entry:"f" ~args:[]
     |> fun v -> v);
  ()

let test_ternary_nesting () =
  Alcotest.(check int) "nested ternary" 20
    (run_int
       "int f(int x) { return x < 0 ? 10 : x == 0 ? 20 : 30; }"
       ~entry:"f" ~args:[ 0 ])

let test_global_shadowing () =
  Alcotest.(check int) "local shadows global" 5
    (run_int "int x = 100;\nint f(void) { int x = 5; return x; }" ~entry:"f"
       ~args:[]);
  Alcotest.(check int) "global visible after scope" 100
    (run_int
       "int x = 100;\nint f(void) { { int x = 5; x = x + 1; } return x; }"
       ~entry:"f" ~args:[])

let test_pretty_all_constructs () =
  (* everything parses back after printing, including hw extensions *)
  let src =
    {|
    int tab[3] = {9, 8, 7};
    chan int ch;
    int helper(int v) { return v * 2; }
    int f(int a, int b) {
      int acc = 0;
      par {
        { send(ch, helper(a)); }
        { acc = recv(ch); }
      }
      do { acc = acc - 1; } while (acc > 10);
      constrain(1, 4) { acc = acc ^ tab[1]; }
      delay;
      return a < b && acc != 0 ? ~acc : -acc;
    }
    |}
  in
  let p1 = parse src in
  let printed = Pretty.program_to_string p1 in
  let p2 = parse printed in
  Alcotest.(check string) "roundtrip fixpoint" printed
    (Pretty.program_to_string p2)

let suite =
  ( "front-edge",
    [ Alcotest.test_case "parse errors" `Quick test_parse_errors;
      Alcotest.test_case "parse error positions" `Quick
        test_parse_error_positions;
      Alcotest.test_case "char escapes" `Quick test_char_escapes;
      Alcotest.test_case "hex and suffixes" `Quick test_hex_and_suffixes;
      Alcotest.test_case "dangling else" `Quick test_dangling_else;
      Alcotest.test_case "for loop forms" `Quick test_comma_free_for_forms;
      Alcotest.test_case "increment forms" `Quick test_increment_forms;
      Alcotest.test_case "signedness conversions" `Quick
        test_signedness_conversions;
      Alcotest.test_case "shift result types" `Quick test_shift_result_types;
      Alcotest.test_case "bool type" `Quick test_bool_type;
      Alcotest.test_case "ternary nesting" `Quick test_ternary_nesting;
      Alcotest.test_case "global shadowing" `Quick test_global_shadowing;
      Alcotest.test_case "pretty all constructs" `Quick
        test_pretty_all_constructs ] )
