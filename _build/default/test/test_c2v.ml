(* C2Verilog stack-machine specifics: code generation, the processor's
   Verilog view, the runtime stack under recursion, the heap, and failure
   modes. *)

let compile src = C2verilog.compile_program (Typecheck.parse_and_check src)

let design src ~entry =
  C2v_machine.compile (Typecheck.parse_and_check src) ~entry

let test_codegen_shape () =
  let compiled = compile "int f(int a) { return a + 1; }" ~entry:"f" in
  Alcotest.(check bool) "has code" true
    (Array.length compiled.C2verilog.code > 0);
  (* first instruction of a function is its frame setup *)
  (match compiled.C2verilog.code.(compiled.C2verilog.entry_pc) with
  | C2verilog.Enter _ -> ()
  | _ -> Alcotest.fail "entry must start with Enter");
  (* exactly one Ret per straight-line function body (plus the implicit
     fallback) *)
  let rets =
    Array.to_list compiled.C2verilog.code
    |> List.filter (fun i ->
           match i with C2verilog.Ret _ -> true | _ -> false)
    |> List.length
  in
  Alcotest.(check int) "explicit + implicit return" 2 rets

let test_comparison_normalization () =
  (* Gt/Ge are compiled as swapped Lt/Le; verify the semantics held *)
  let d =
    design "int f(int a, int b) { return (a > b) * 10 + (a >= b); }"
      ~entry:"f"
  in
  Alcotest.(check (option int)) "gt/ge" (Some 11) (Design.run_int d [ 5; 3 ]);
  Alcotest.(check (option int)) "eq case" (Some 1) (Design.run_int d [ 3; 3 ]);
  Alcotest.(check (option int)) "lt case" (Some 0) (Design.run_int d [ 2; 3 ])

let test_deep_recursion_stack () =
  let d =
    design "int sum(int n) { if (n <= 0) { return 0; } return n + sum(n - 1); }"
      ~entry:"sum"
  in
  Alcotest.(check (option int)) "recursion depth 500" (Some 125250)
    (Design.run_int d [ 500 ])

let test_stack_overflow_detected () =
  let d =
    design "int loop(int n) { return loop(n + 1); }" ~entry:"loop"
  in
  match d.Design.run (Design.int_args [ 0 ]) with
  | exception C2v_machine.Runtime_error _ -> ()
  | exception C2v_machine.Timeout -> ()
  | _ -> Alcotest.fail "unbounded recursion must fail"

let test_heap_and_stack_disjoint () =
  let d =
    design
      {|
      int f(int n) {
        int* block = malloc(4);
        block[0] = 11;
        int local = 22;
        block[1] = 33;
        return block[0] + local + block[1] + n;
      }
      |}
      ~entry:"f"
  in
  Alcotest.(check (option int)) "heap/stack independent" (Some 67)
    (Design.run_int d [ 1 ])

let test_cycle_rules () =
  (* memory-heavy code costs more cycles per instruction than ALU code *)
  let alu = design "int f(int a) { return ((a + 1) * 3) ^ (a - 2); }" ~entry:"f" in
  let ra = alu.Design.run (Design.int_args [ 5 ]) in
  Alcotest.(check bool) "cycles exceed instruction count" true
    (Option.get ra.Design.cycles > 5);
  (* division is charged heavily *)
  let div = design "int f(int a) { return a / 3; }" ~entry:"f" in
  let add = design "int f(int a) { return a + 3; }" ~entry:"f" in
  let c d = Option.get (d.Design.run (Design.int_args [ 9 ])).Design.cycles in
  Alcotest.(check bool) "div costs more than add" true (c div > c add)

let test_verilog_view () =
  let d = design "int f(int a) { return a * 2 + 1; }" ~entry:"f" in
  match d.Design.verilog () with
  | None -> Alcotest.fail "c2verilog must emit its processor"
  | Some v ->
    let contains needle =
      let n = String.length needle in
      let rec go i =
        i + n <= String.length v && (String.sub v i n = needle || go (i + 1))
      in
      go 0
    in
    List.iter
      (fun needle ->
        Alcotest.(check bool) ("verilog contains " ^ needle) true
          (contains needle))
      [ "module f("; "reg [71:0] rom"; "function [63:0] alu";
        "output reg done"; "endmodule"; "enter"; "ret" ];
    (* every instruction appears in the ROM init *)
    let compiled = compile "int f(int a) { return a * 2 + 1; }" ~entry:"f" in
    Alcotest.(check bool) "all ROM words initialized" true
      (contains
         (Printf.sprintf "rom[%d]" (Array.length compiled.C2verilog.code - 1)))

let test_globals_initialized_in_memory_image () =
  let compiled =
    compile "int table[4] = {5, 6, 7, 8};\nint f(void) { return table[2]; }"
      ~entry:"f"
  in
  Alcotest.(check int) "four initialized words" 4
    (List.length compiled.C2verilog.initial_memory);
  let d =
    design "int table[4] = {5, 6, 7, 8};\nint f(void) { return table[2]; }"
      ~entry:"f"
  in
  Alcotest.(check (option int)) "reads the image" (Some 7)
    (Design.run_int d [])

let suite =
  ( "c2verilog",
    [ Alcotest.test_case "codegen shape" `Quick test_codegen_shape;
      Alcotest.test_case "comparison normalization" `Quick
        test_comparison_normalization;
      Alcotest.test_case "deep recursion stack" `Quick
        test_deep_recursion_stack;
      Alcotest.test_case "stack overflow detected" `Quick
        test_stack_overflow_detected;
      Alcotest.test_case "heap/stack disjoint" `Quick
        test_heap_and_stack_disjoint;
      Alcotest.test_case "cycle rules" `Quick test_cycle_rules;
      Alcotest.test_case "verilog view" `Quick test_verilog_view;
      Alcotest.test_case "global memory image" `Quick
        test_globals_initialized_in_memory_image ] )
