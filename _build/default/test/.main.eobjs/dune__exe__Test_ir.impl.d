test/test_ir.ml: Alcotest Array Ast Bitvec Bitwidth Cfg Cir Cir_interp Dep Interp List Loopopt Lower Option Pointer Printf QCheck QCheck_alcotest Ssa String Typecheck Workloads
