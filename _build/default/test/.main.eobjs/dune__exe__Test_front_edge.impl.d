test/test_front_edge.ml: Alcotest Ast Interp Lexer Parser Pretty Typecheck
