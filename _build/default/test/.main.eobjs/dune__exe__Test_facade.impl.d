test/test_facade.ml: Alcotest Chls List Option Printf String Workloads
