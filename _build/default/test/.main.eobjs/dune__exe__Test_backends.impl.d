test/test_backends.ml: Alcotest Area Bitvec Chls Cir Design Fsmd List Lower Netlist Ocapi Option Printf Rtlgen Schedule Specc String Systemc Workloads
