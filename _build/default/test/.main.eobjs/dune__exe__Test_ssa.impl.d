test/test_ssa.ml: Alcotest Array Cfg Cir Hashtbl List Lower Printf Simplify Ssa Typecheck
