test/test_workloads.ml: Alcotest Dialect List Printf String Workloads
