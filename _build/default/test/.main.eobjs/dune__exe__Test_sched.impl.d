test/test_sched.ml: Alcotest Array Bitvec Cir Cir_interp Constrain Dep Design Hardwarec Hashtbl Ilp_limits Interp Lazy List Lower Option Pipeline Printf Schedule Simplify Typecheck Workloads
