test/test_interp.ml: Alcotest Array Bitvec Int32 Interp Option QCheck QCheck_alcotest Typecheck
