test/test_c2v.ml: Alcotest Array C2v_machine C2verilog Design List Option Printf String Typecheck
