test/test_interp_edge.ml: Alcotest Bitvec Interp List Printf String Typecheck
