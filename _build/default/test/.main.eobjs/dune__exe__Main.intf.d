test/main.mli:
