test/test_flow.ml: Alcotest Asim Bitvec Chls Design Dfg List Lower Option Printf Ssa String Typecheck Workloads
