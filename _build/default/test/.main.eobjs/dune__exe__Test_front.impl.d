test/test_front.ml: Alcotest Ast Ctypes Dialect Interp Lexer List Loopform Option Parser Pretty Typecheck
