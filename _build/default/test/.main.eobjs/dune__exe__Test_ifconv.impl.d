test/test_ifconv.ml: Alcotest Array Bitvec Cir Cir_interp Design Ifconv List Lower Option Pipeline Printf Simplify Typecheck Workloads
