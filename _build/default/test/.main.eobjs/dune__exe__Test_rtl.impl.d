test/test_rtl.ml: Alcotest Area Array Bitvec Cir Float Fsmd List Lower Neteval Netlist Option Rtlgen Rtlsim Schedule Simplify String Typecheck Verilog
