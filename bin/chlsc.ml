(* chlsc: the CHLS compiler driver.

     chlsc table1                          print the paper's Table 1
     chlsc check FILE                      which dialects accept this program?
     chlsc run FILE -e main -a 1,2         software oracle (reference interp)
     chlsc compile FILE -b bachc -e main   synthesize; optional --run/--verilog
     chlsc fuzz --seed 1 -n 50             differential dialect-matrix fuzzing

   See README.md for the tour. *)

open Cmdliner

let read_file path =
  In_channel.with_open_text path In_channel.input_all

(* Run [f], turning located front-end and lowering exceptions into
   file:line:col diagnostics instead of uncaught-exception crashes. *)
let or_located_error file f =
  let located loc msg =
    if loc = Ast.no_loc then Printf.eprintf "%s: error: %s\n" file msg
    else
      Printf.eprintf "%s:%d:%d: error: %s\n" file loc.Ast.line loc.Ast.col msg;
    exit 1
  in
  match f () with
  | v -> v
  | exception Parser.Error (msg, loc) -> located loc msg
  | exception Typecheck.Error (msg, loc) -> located loc msg
  | exception Lower.Error (msg, loc) -> located loc msg
  | exception Interp.Internal_error (msg, loc) ->
    located loc ("internal error: " ^ msg)

let parse_args_list s =
  if String.trim s = "" then []
  else List.map int_of_string (String.split_on_char ',' (String.trim s))

(* --- common arguments --- *)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
         ~doc:"C-like source file")

let entry_arg =
  Arg.(value & opt string "main" & info [ "e"; "entry" ] ~docv:"NAME"
         ~doc:"Entry function (default: main)")

let args_arg =
  Arg.(value & opt (some string) None & info [ "a"; "args" ] ~docv:"N,N,..."
         ~doc:"Comma-separated integer arguments")

(* --- subcommands --- *)

let table1_cmd =
  let doc = "Print the paper's Table 1 (the language catalog)" in
  Cmd.v (Cmd.info "table1" ~doc)
    Term.(const (fun () -> print_string (Chls.render_table1 ())) $ const ())

let metrics_json_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics-json" ] ~docv:"OUT.json"
           ~doc:
             "Write a machine-readable run report (schema chls.metrics/3): \
              design facts, the per-pass compile trace, the span trace tree, \
              simulator counters and the run outcome, rendered \
              deterministically")

let trace_json_arg =
  Arg.(value & opt (some string) None
       & info [ "trace-json" ] ~docv:"OUT.json"
           ~doc:
             "Write the compile's span trace as Chrome trace_event JSON \
              (complete X events) — load it in about://tracing or Perfetto. \
              On failure the file also carries the flight-recorder dump")

(* --- the persistent design cache (lib/core/cache.ml) --- *)

let cache_dir_arg =
  Arg.(value & opt (some string) None
       & info [ "cache-dir" ] ~docv:"DIR"
           ~doc:
             "Attach a persistent on-disk design cache under $(docv) \
              (created if missing).  Compiled designs survive process \
              restarts and are shared with co-operating workers; corrupt \
              or version-skewed entries silently degrade to a recompile")

let cache_max_bytes_arg =
  Arg.(value & opt (some int) None
       & info [ "cache-max-bytes" ] ~docv:"N"
           ~doc:
             "Byte budget for the on-disk cache (default 256 MiB); \
              least-recently-used entries are evicted past it")

let attach_cache cache_dir cache_max_bytes =
  match cache_dir with
  | None -> ()
  | Some dir -> (
    match Driver.attach_disk_cache ?max_bytes:cache_max_bytes ~dir () with
    | Ok _ -> ()
    | Error msg ->
      Printf.eprintf "cannot open cache %s: %s\n" dir msg;
      exit 1)

(* chlsc check --races: the static concurrency checker (lib/analysis).
   Diagnostics print as file:line:col with the dialect's severity; exit
   status is 0 when the program is race-free under the chosen dialect and
   1 when any hard error is reported. *)
let run_races file dialect_name metrics_json =
  let dialect =
    (* accept both backend spellings (handelc, bachc) and Table 1 names
       ("Handel-C", "Bach C") *)
    match Chls.backend_of_name dialect_name with
    | Some b -> Chls.dialect_of b
    | None -> (
      match Dialect.find dialect_name with
      | Some d -> d
      | None ->
        Printf.eprintf "unknown dialect %S (try handelc, specc, bachc)\n"
          dialect_name;
        exit 1)
  in
  let program = or_located_error file (fun () -> Chls.parse (read_file file)) in
  let diags = Conc_check.check_program ~dialect program in
  List.iter (fun d -> print_endline (Conc_check.render ~file d)) diags;
  let errors = Conc_check.errors diags
  and warnings = Conc_check.warnings diags in
  Printf.printf "%s: %d error(s), %d warning(s) under %s rules\n"
    (if errors = [] then "race-free" else "concurrency-unsafe")
    (List.length errors) (List.length warnings) dialect.Dialect.name;
  (match metrics_json with
  | None -> ()
  | Some path ->
    let m = Metrics.create () in
    Metrics.set_string m "schema" "chls.metrics/3";
    Metrics.set_string m "check.dialect" dialect.Dialect.name;
    List.iter
      (fun (k, n) -> Metrics.set_int m ("check." ^ k) n)
      (Conc_check.metric_counters diags);
    Metrics.set_int m "check.errors" (List.length errors);
    Metrics.set_int m "check.warnings" (List.length warnings);
    Metrics.write_file m path;
    Printf.printf "wrote %s\n" path);
  if errors <> [] then exit 1

let check_cmd =
  let doc =
    "Report which surveyed dialects accept the program; with --races, run \
     the static concurrency checker instead"
  in
  let races_flag =
    Arg.(value & flag
         & info [ "races" ]
             ~doc:
               "Run the par-block race detector and channel lint: report \
                write/write and read/write conflicts between par arms and \
                rendezvous protocol hazards with source locations, under \
                the severity rules of --dialect.  Exit 0 when race-free, \
                1 on any hard error")
  in
  let dialect_arg =
    Arg.(value & opt string "handelc"
         & info [ "d"; "dialect" ] ~docv:"DIALECT"
             ~doc:
               "Dialect whose concurrency rules judge the program \
                (handel-c | specc | \"bach c\" | ...; default handel-c)")
  in
  let run file races dialect metrics_json =
    if races then run_races file dialect metrics_json
    else begin
      let program =
        or_located_error file (fun () -> Chls.parse (read_file file))
      in
      List.iter
        (fun (d : Dialect.t) ->
          match Dialect.check d program with
          | [] -> Printf.printf "%-18s accepts\n" d.Dialect.name
          | { Dialect.rule; where; vloc } :: _ ->
            if vloc = Ast.no_loc then
              Printf.printf "%-18s rejects: %s (in %s)\n" d.Dialect.name rule
                where
            else
              Printf.printf "%-18s rejects: %s (in %s, at %d:%d)\n"
                d.Dialect.name rule where vloc.Ast.line vloc.Ast.col)
        Dialect.table1
    end
  in
  Cmd.v (Cmd.info "check" ~doc)
    Term.(const run $ file_arg $ races_flag $ dialect_arg $ metrics_json_arg)

let run_cmd =
  let doc = "Execute with the software semantics (reference interpreter)" in
  let run file entry args =
    let source = read_file file in
    let args = parse_args_list (Option.value args ~default:"") in
    let result =
      or_located_error file (fun () -> Chls.reference source ~entry ~args)
    in
    Printf.printf "%s(%s) = %d\n" entry
      (String.concat "," (List.map string_of_int args))
      result
  in
  Cmd.v (Cmd.info "run" ~doc) Term.(const run $ file_arg $ entry_arg $ args_arg)

let backend_arg =
  let parse s =
    match Chls.backend_of_name s with
    | Some b -> Ok b
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown backend %S; registered: %s" s
             (Registry.catalog ())))
  in
  let print fmt b = Format.pp_print_string fmt (Chls.backend_name b) in
  Arg.(value
       & opt (conv (parse, print)) (Registry.get "bachc")
       & info [ "b"; "backend" ] ~docv:"BACKEND"
           ~doc:("Synthesis scheme: " ^ Registry.catalog ()))

let verilog_arg =
  Arg.(value & opt (some string) None & info [ "verilog" ] ~docv:"OUT.v"
         ~doc:"Write generated Verilog to this file")

let area_flag =
  Arg.(value & flag & info [ "area" ] ~doc:"Print the area/timing report")

let stats_flag =
  Arg.(value & flag
       & info [ "stats" ]
           ~doc:
             "With --args: print netlist-evaluator performance counters \
              (nodes evaluated, events propagated, cycles, wall time) for \
              the run, comparing event-driven settling against the \
              full-sweep oracle")

let trace_passes_flag =
  Arg.(value & flag
       & info [ "trace-passes" ]
           ~doc:
             "Print the backend's declared pipeline and a per-pass table: \
              wall time, IR-size deltas (blocks, instructions, registers) \
              and vectors verified")

let dump_ir_arg =
  Arg.(value & opt_all string []
       & info [ "dump-ir" ] ~docv:"PASS"
           ~doc:
             "Dump the IR after the named pass (repeatable; \"lower\" names \
              the lowering stage itself)")

let verify_passes_flag =
  Arg.(value & flag
       & info [ "verify-passes" ]
           ~doc:
             "Differentially verify every semantics-preserving pass against \
              the CIR interpreter on the --args vector, failing loudly on \
              divergence (requires --args)")

let vcd_arg =
  Arg.(value & opt (some string) None
       & info [ "vcd" ] ~docv:"OUT.vcd"
           ~doc:
             "With --args: write the behavioural simulation as a VCD \
              waveform (FSMD backends trace the FSM state, every register \
              and memory writes per cycle; cash traces token firings at \
              their completion times; cones traces netlist value changes)")

let vcd_netlist_arg =
  Arg.(value & opt (some string) None
       & info [ "vcd-netlist" ] ~docv:"OUT.vcd"
           ~doc:
             "With --args: drive the elaborated netlist through the \
              event-driven evaluator and write every signal change as a \
              VCD waveform (the event worklist is the change list)")

let profile_flag =
  Arg.(value & flag
       & info [ "profile" ]
           ~doc:
             "With --args: print execution histograms — FSM state visit \
              counts (summing to the cycle count) and the hottest netlist \
              nodes by evaluation count")

let sim_arg =
  let engine =
    Arg.enum
      [ ("compiled", Design.Compiled);
        ("event", Design.Event_driven);
        ("sweep", Design.Full_sweep) ]
  in
  Arg.(value & opt engine Design.Compiled
       & info [ "sim" ] ~docv:"ENGINE"
           ~doc:
             "Simulation engine for the behavioural run: $(b,compiled) \
              (levelized closure evaluator, the default), $(b,event) \
              (event-driven interpreter) or $(b,sweep) (full-sweep \
              oracle).  Backends with a single simulator ignore the \
              selection; designs wider than 62 bits fall back to the \
              interpreter.")

let verify_sim_flag =
  Arg.(value & flag
       & info [ "verify-sim" ]
           ~doc:
             "With --args: run the compiled engine and the event-driven \
              oracle on the same vectors and fail (exit 2) unless result, \
              globals, memories, cycle count and VCD change stream are \
              bit-identical")

(* Drive the design's netlist view through the evaluator under both settling
   strategies and print the activity counters side by side. *)
let print_sim_stats (design : Design.t) args =
  match design.Design.netlist () with
  | None ->
    print_endline "simulator stats: this backend has no netlist view"
  | Some nl ->
    let ins = Netlist.inputs nl in
    if List.length ins <> List.length args then begin
      Printf.eprintf "--stats: netlist takes %d input(s), got %d argument(s)\n"
        (List.length ins) (List.length args);
      exit 1
    end
    else begin
      let inputs =
        List.map2
          (fun (name, s) v ->
            (name, Bitvec.of_int ~width:(Netlist.width nl s) v))
          ins args
      in
      let describe label (st : Neteval.stats) =
        Printf.printf
          "  %-13s %d cycles, %d node evals (%.1f/settle), %d events, %.2f ms\n"
          label st.Neteval.cycles st.Neteval.nodes_evaluated
          (float_of_int st.Neteval.nodes_evaluated
          /. float_of_int (max 1 st.Neteval.settles))
          st.Neteval.events
          (st.Neteval.wall_time *. 1000.)
      in
      Printf.printf "netlist evaluator stats (%d nodes):\n" (Netlist.length nl);
      if not (List.mem_assoc "done" (Netlist.outputs nl)) then begin
        (* combinational netlist: one settle, identical under both
           strategies *)
        let _, st = Neteval.eval_combinational_stats nl ~inputs in
        describe "combinational" st
      end
      else begin
        let runc =
          Netcomp.run_until_done_stats nl ~inputs ~done_name:"done"
            ~max_cycles:2_000_000
        in
        let run strategy =
          Neteval.run_until_done_stats ~strategy nl ~inputs ~done_name:"done"
            ~max_cycles:2_000_000
        in
        match (runc, run Neteval.Event_driven, run Neteval.Full_sweep) with
        | ( Ok (c_out, c_cycles, cs),
            Ok (ev_out, ev_cycles, ev),
            Ok (fs_out, fs_cycles, fs) ) ->
          describe "compiled:" cs;
          describe "event-driven:" ev;
          describe "full-sweep:" fs;
          let outs_eq a b =
            List.for_all2
              (fun (n1, v1) (n2, v2) -> n1 = n2 && Bitvec.equal v1 v2)
              a b
          in
          let agree =
            ev_cycles = fs_cycles && c_cycles = ev_cycles
            && outs_eq ev_out fs_out && outs_eq c_out ev_out
          in
          Printf.printf
            "  node-eval reduction: %.1fx; compiled speedup: %.1fx; \
             bit-exact across engines: %s\n"
            (float_of_int fs.Neteval.nodes_evaluated
            /. float_of_int (max 1 ev.Neteval.nodes_evaluated))
            (ev.Neteval.wall_time /. Float.max 1e-9 cs.Neteval.wall_time)
            (if agree then "yes" else "NO — evaluator bug");
          if not agree then exit 2
        | Error `Timeout, _, _ | _, Error `Timeout, _ | _, _, Error `Timeout
          ->
          print_endline "  (timed out)"
      end
    end

(* Drive the design's netlist view through the event-driven evaluator with
   an observation probe installed: the VCD behind --vcd-netlist, the
   hot-node histogram behind --profile and the netlist.* counters of the
   metrics report all come from this one instrumented run. *)
let observe_netlist (design : Design.t) args ~vcd_path ~profile ~metrics =
  match design.Design.netlist () with
  | None ->
    if vcd_path <> None then begin
      Printf.eprintf "--vcd-netlist: this backend has no netlist view\n";
      exit 1
    end
  | Some nl ->
    let ins = Netlist.inputs nl in
    if List.length ins <> List.length args then begin
      Printf.eprintf "netlist takes %d input(s), got %d argument(s)\n"
        (List.length ins) (List.length args);
      exit 1
    end;
    let inputs =
      List.map2
        (fun (name, s) v ->
          (name, Bitvec.of_int ~width:(Netlist.width nl s) v))
        ins args
    in
    let writer = Option.map (fun _ -> Vcd.create ()) vcd_path in
    let t = Neteval.create nl in
    Option.iter
      (fun w -> Neteval.set_probe t (Trace.neteval_probe w nl))
      writer;
    (if List.mem_assoc "done" (Netlist.outputs nl) then begin
       match
         Neteval.drive t ~inputs ~done_name:"done" ~max_cycles:2_000_000
       with
       | Ok _ -> ()
       | Error `Timeout -> print_endline "netlist run: timed out"
     end
     else Neteval.settle t ~inputs);
    let st = Neteval.stats t in
    Metrics.set_int metrics "netlist.nodes" (Netlist.length nl);
    Metrics.set_int metrics "netlist.cycles" st.Neteval.cycles;
    Metrics.set_int metrics "netlist.settles" st.Neteval.settles;
    Metrics.set_int metrics "netlist.nodes_evaluated"
      st.Neteval.nodes_evaluated;
    Metrics.set_int metrics "netlist.events" st.Neteval.events;
    if profile then begin
      let ranked =
        List.sort
          (fun (_, a) (_, b) -> compare (b : int) a)
          (Array.to_list (Array.mapi (fun s n -> (s, n)) (Neteval.eval_counts t)))
      in
      print_endline "profile: hottest netlist nodes (evaluations)";
      List.iteri
        (fun i (s, n) ->
          if i < 10 && n > 0 then Printf.printf "  n%-6d %d\n" s n)
        ranked
    end;
    match (vcd_path, writer) with
    | Some path, Some w ->
      Vcd.write_file w path;
      Printf.printf "wrote %s (%d vars)\n" path (Vcd.num_vars w)
    | _ -> ()

(* The FSM state visit histogram of the behavioural run; states_visited
   sums to the cycle count, so the histogram is a complete account of
   where the cycles went. *)
let print_state_profile (r : Design.run_result) =
  match Metrics.find r.Design.metrics "sim.states_visited" with
  | Some (Metrics.List l) ->
    let counts =
      List.mapi
        (fun i j -> match j with Metrics.Int n -> (i, n) | _ -> (i, 0))
        l
    in
    let total = List.fold_left (fun acc (_, n) -> acc + n) 0 counts in
    print_endline "profile: FSM state visit counts";
    List.iter
      (fun (i, n) -> if n > 0 then Printf.printf "  state %-4d %d\n" i n)
      (List.sort (fun (_, a) (_, b) -> compare (b : int) a) counts);
    Printf.printf "  total %d cycles\n" total
  | _ -> ()

let compile_cmd =
  let doc = "Synthesize the program with a surveyed scheme" in
  let run file entry backend args verilog area stats trace_passes dump_ir
      verify_passes vcd vcd_netlist profile metrics_json trace_json sim
      verify_sim cache_dir cache_max_bytes =
    attach_cache cache_dir cache_max_bytes;
    let source = read_file file in
    let verify =
      if not verify_passes then []
      else
        match args with
        | Some a -> [ parse_args_list a ]
        | None ->
          Printf.eprintf
            "--verify-passes needs an argument vector: pass --args as well\n";
          exit 1
    in
    (* per-compile configuration — no global pass options; the config's
       digest keys the design cache so later sweeps see distinct points *)
    let config =
      { Config.default with Config.verify; dump_after = dump_ir; sim }
    in
    (* the whole invocation is one trace: frontend, dialect check, passes,
       backend, simulation and oracle become spans under this root *)
    let tr, tctx = Span.start ~kind:"compile" () in
    Span.add_attr tctx "file" (Metrics.String file);
    Span.add_attr tctx "entry" (Metrics.String entry);
    let write_trace ?(failed = false) () =
      match trace_json with
      | None -> ()
      | Some path ->
        Span.finish tr;
        let sink = Span.Chrome.create () in
        Span.Chrome.add sink tr;
        let extra =
          if failed then [ ("flight_recorder", Span.Flight.dump ()) ]
          else []
        in
        Span.Chrome.write_file ~extra sink path;
        Printf.printf "wrote %s (%d trace event(s))\n" path
          (Span.Chrome.events sink)
    in
    (* the driver owns parse-once + the content-hashed design cache and
       turns every rejection into a typed, located diagnostic *)
    let session = Driver.create ~entry source in
    let design =
      match Driver.compile ~ctx:tctx ~config session backend with
      | Ok design -> design
      | Error (Driver.Verification_error { message; _ }) ->
        write_trace ~failed:true ();
        Printf.eprintf "PASS VERIFICATION FAILED: %s\n" message;
        exit 2
      | Error e ->
        write_trace ~failed:true ();
        Printf.eprintf "%s\n" (Driver.render_error ~file e);
        exit 1
    in
    let m = Metrics.create () in
    Metrics.set_string m "schema" "chls.metrics/3";
    Metrics.set_string m "design.name" entry;
    Metrics.set_string m "design.backend" design.Design.backend;
    List.iter
      (fun (k, v) -> Metrics.set_string m ("design.stats." ^ k) v)
      design.Design.stats;
    (match design.Design.clock_period with
    | Some p -> Metrics.set_fixed m "design.clock_period" ~decimals:1 p
    | None -> ());
    Metrics.set m "passes" (Trace.json_of_pass_trace design.Design.pass_trace);
    if Pipeline.fallback_count () > 0 then
      Metrics.set_int m "sched.modulo.fallbacks" (Pipeline.fallback_count ());
    let write_metrics () =
      match metrics_json with
      | Some path ->
        (* fold in the driver's timings, cache counters and the span
           trace as they stand at write time *)
        Metrics.merge ~into:m (Driver.metrics session);
        List.iter
          (fun (k, v) -> Metrics.set_int m k v)
          (Driver.cache_metrics ());
        List.iter
          (fun (k, v) -> Metrics.set_fixed m k ~decimals:1 v)
          (Driver.cache_hit_rates ());
        Span.finish tr;
        Metrics.set m "spans" (Span.to_json tr);
        Metrics.write_file m path;
        Printf.printf "wrote %s\n" path
      | None -> ()
    in
    Printf.printf "backend: %s\n" design.Design.backend;
    if trace_passes then begin
      (match Chls.pipeline_of backend with
      | Some pl ->
        Printf.printf "pipeline %s: %s\n" pl.Passes.pl_name
          (Passes.describe pl)
      | None -> ());
      if verify_passes then
        print_endline
          "per-pass differential verification vs Cir_interp: ok (bit-exact)";
      print_string (Passes.render_table design.Design.pass_trace)
    end;
    List.iter
      (fun (k, v) -> Printf.printf "%s: %s\n" k v)
      design.Design.stats;
    (match design.Design.clock_period with
    | Some p -> Printf.printf "estimated clock period: %.1f\n" p
    | None -> print_endline "no clock (combinational or asynchronous)");
    (match args with
    | None ->
      List.iter
        (fun (flag, present) ->
          if present then
            Printf.printf "%s needs a run: pass --args as well\n" flag)
        [ ("--stats", stats);
          ("--vcd", vcd <> None);
          ("--vcd-netlist", vcd_netlist <> None);
          ("--profile", profile);
          ("--verify-sim", verify_sim) ]
    | Some args ->
      let args = parse_args_list args in
      let writer = Option.map (fun _ -> Vcd.create ()) vcd in
      let finish_vcd () =
        match (vcd, writer) with
        | Some path, Some w ->
          Vcd.write_file w path;
          Printf.printf "wrote %s (%d vars)\n" path (Vcd.num_vars w)
        | _ -> ()
      in
      Metrics.set_string m "run.sim" (Design.engine_name sim);
      (match
         Design.run_traced ~ctx:tctx ?vcd:writer ~sim design
           (Design.int_args args)
       with
      | exception Rtlsim.Timeout { cycles; state } ->
        (* a partial outcome, not a bare failure: report how far the run
           got through the same channels a finished run uses *)
        Metrics.set_string m "run.outcome" "timeout";
        Metrics.set_int m "run.cycles" cycles;
        Metrics.set_int m "run.state" state;
        finish_vcd ();
        write_metrics ();
        write_trace ~failed:true ();
        Printf.eprintf "timeout after %d cycles (in state %d)\n" cycles state;
        exit 3
      | exception Asim.Timeout { tokens_fired; time } ->
        Metrics.set_string m "run.outcome" "timeout";
        Metrics.set_int m "run.tokens_fired" tokens_fired;
        Metrics.set_fixed m "run.time_units" ~decimals:1 time;
        finish_vcd ();
        write_metrics ();
        write_trace ~failed:true ();
        Printf.eprintf "timeout after %d tokens (at time %.1f)\n" tokens_fired
          time;
        exit 3
      | r ->
        Metrics.set_string m "run.outcome" "ok";
        (match r.Design.result with
        | Some v -> Metrics.set_int m "run.result" (Bitvec.to_int v)
        | None -> ());
        (match r.Design.cycles with
        | Some c -> Metrics.set_int m "run.cycles" c
        | None -> ());
        (match r.Design.time_units with
        | Some t -> Metrics.set_fixed m "run.time_units" ~decimals:1 t
        | None -> ());
        Metrics.merge ~into:m ~prefix:"run" r.Design.metrics;
        finish_vcd ();
        Printf.printf "%s(%s) = %s%s\n" entry
          (String.concat "," (List.map string_of_int args))
          (match r.Design.result with
          | Some v -> string_of_int (Bitvec.to_int v)
          | None -> "void")
          (match (r.Design.cycles, r.Design.time_units) with
          | Some c, _ -> Printf.sprintf " in %d cycles" c
          | None, Some t -> Printf.sprintf " in %.0f time units" t
          | None, None -> "");
        (* always cross-check the oracle (on the session's parsed program) *)
        let expected =
          match Driver.reference ~ctx:tctx session ~args with
          | Ok v -> v
          | Error e ->
            write_trace ~failed:true ();
            Printf.eprintf "%s\n" (Driver.render_error ~file e);
            exit 1
        in
        let agrees =
          Option.map Bitvec.to_int r.Design.result = Some expected
        in
        Metrics.set_bool m "run.matches_reference" agrees;
        if not agrees then begin
          write_metrics ();
          write_trace ~failed:true ();
          Printf.eprintf "MISMATCH vs software semantics (expected %d)\n"
            expected;
          exit 2
        end;
        if verify_sim then begin
          (* differential check: compiled engine vs the event-driven
             oracle on the same vectors, comparing the full observable
             surface — result, globals, memories, cycle count and the
             VCD change stream *)
          let run_engine sim =
            let w = Vcd.create () in
            let r = design.Design.run ~vcd:w ~sim (Design.int_args args) in
            (r, Vcd.contents w)
          in
          let rc, vcd_c = run_engine Design.Compiled in
          let re, vcd_e = run_engine Design.Event_driven in
          let bv_opt_eq a b =
            match (a, b) with
            | Some x, Some y -> Bitvec.equal x y
            | None, None -> true
            | _ -> false
          in
          let named_eq eq a b =
            List.length a = List.length b
            && List.for_all2
                 (fun (n1, v1) (n2, v2) -> n1 = n2 && eq v1 v2)
                 a b
          in
          let arr_eq a b =
            Array.length a = Array.length b
            && Array.for_all2 Bitvec.equal a b
          in
          let mismatches =
            List.filter_map
              (fun (what, ok) -> if ok then None else Some what)
              [ ("result", bv_opt_eq rc.Design.result re.Design.result);
                ("globals",
                 named_eq Bitvec.equal rc.Design.globals re.Design.globals);
                ("memories",
                 named_eq arr_eq rc.Design.memories re.Design.memories);
                ("cycles", rc.Design.cycles = re.Design.cycles);
                ("vcd", vcd_c = vcd_e) ]
          in
          Metrics.set_bool m "run.sim_verified" (mismatches = []);
          if mismatches = [] then
            print_endline
              "verify-sim: compiled == event-driven (result, globals, \
               memories, cycles, vcd)"
          else begin
            write_metrics ();
            Printf.eprintf
              "verify-sim: DIVERGENCE between compiled and event-driven \
               engines (%s)\n"
              (String.concat ", " mismatches);
            exit 2
          end
        end;
        if profile then print_state_profile r;
        if stats then begin
          List.iter
            (fun (k, v) -> Printf.printf "sim %s: %s\n" k v)
            (Metrics.render_flat r.Design.metrics);
          print_sim_stats design args
        end);
      if vcd_netlist <> None || profile then
        observe_netlist design args ~vcd_path:vcd_netlist ~profile ~metrics:m);
    write_metrics ();
    write_trace ();
    if area then begin
      match design.Design.area () with
      | Some a -> Format.printf "%a\n" Area.pp_report a
      | None -> print_endline "no structural area view for this backend"
    end;
    match verilog with
    | None -> ()
    | Some path -> (
      match design.Design.verilog () with
      | Some v ->
        Out_channel.with_open_text path (fun oc -> output_string oc v);
        Printf.printf "wrote %s (%d bytes)\n" path (String.length v)
      | None ->
        Printf.eprintf "this backend has no Verilog view\n";
        exit 1)
  in
  Cmd.v (Cmd.info "compile" ~doc)
    Term.(const run $ file_arg $ entry_arg $ backend_arg $ args_arg
          $ verilog_arg $ area_flag $ stats_flag $ trace_passes_flag
          $ dump_ir_arg $ verify_passes_flag $ vcd_arg $ vcd_netlist_arg
          $ profile_flag $ metrics_json_arg $ trace_json_arg $ sim_arg
          $ verify_sim_flag $ cache_dir_arg $ cache_max_bytes_arg)

(* --- chlsc compare: one source through every registered backend --- *)

(* Fixed-width table, widths computed from the data (no truncation); the
   last column is left unpadded. *)
let print_table header rows =
  let widths =
    List.fold_left
      (fun ws row -> List.map2 (fun w c -> max w (String.length c)) ws row)
      (List.map String.length header)
      rows
  in
  let emit row =
    let n = List.length row in
    List.iteri
      (fun i (w, c) ->
        if i = n - 1 then print_string c
        else print_string (c ^ String.make (w - String.length c + 2) ' '))
      (List.combine widths row);
    print_newline ()
  in
  emit header;
  print_endline
    (String.make
       (List.fold_left ( + ) 0 widths + (2 * (List.length widths - 1)))
       '-');
  List.iter emit rows

let compare_cmd =
  let doc =
    "Compile the program through every registered backend in one \
     invocation (the frontend runs once, designs are content-cached), run \
     the shared argument vectors and print the cross-backend table"
  in
  let args_all =
    Arg.(value & opt_all string []
         & info [ "a"; "args" ] ~docv:"N,N,..."
             ~doc:
               "Shared argument vector (repeatable: every accepting \
                backend runs each vector, checked against the software \
                oracle)")
  in
  let backends_arg =
    Arg.(value & opt (some string) None
         & info [ "backends" ] ~docv:"B,B,..."
             ~doc:
               "Restrict the comparison to these comma-separated backends \
                (default: all registered)")
  in
  let run file entry vec_strings backends_filter metrics_json cache_dir
      cache_max_bytes =
    attach_cache cache_dir cache_max_bytes;
    let source = read_file file in
    let session = Driver.create ~entry source in
    let backends =
      match backends_filter with
      | None -> Registry.all ()
      | Some s ->
        List.map
          (fun n ->
            match Registry.find (String.trim n) with
            | Some b -> b
            | None ->
              Printf.eprintf "unknown backend %S; registered: %s\n" n
                (Registry.catalog ());
              exit 1)
          (String.split_on_char ',' s)
    in
    let vectors = List.map parse_args_list vec_strings in
    (match Driver.program session with
    | Ok _ -> ()
    | Error e ->
      Printf.eprintf "%s\n" (Driver.render_error ~file e);
      exit 1);
    let expected =
      List.map
        (fun args ->
          match Driver.reference session ~args with
          | Ok v -> Some v
          | Error _ -> None)
        vectors
    in
    let m = Metrics.create () in
    Metrics.set_string m "schema" "chls.metrics/3";
    Metrics.set_string m "compare.file" file;
    Metrics.set_string m "compare.entry" entry;
    Metrics.set_int m "compare.vectors" (List.length vectors);
    let mismatch = ref false and compiled = ref 0 in
    let join cells = if cells = [] then "-" else String.concat "," cells in
    let rows =
      List.map
        (fun (b, result) ->
          let name = Registry.name b in
          let key k = Printf.sprintf "compare.backends.%s.%s" name k in
          match result with
          | Error e ->
            let status, short =
              match e with
              | Driver.No_c_frontend _ -> ("no-c-frontend", "no C frontend")
              | Driver.Dialect_reject
                  { violations = { Dialect.rule; _ } :: _; _ } ->
                ("dialect-reject", "rejects: " ^ rule)
              | Driver.Dialect_reject _ -> ("dialect-reject", "rejects")
              | _ -> ("error", "error")
            in
            Metrics.set_string m (key "status") status;
            Metrics.set_string m (key "detail") (Driver.render_error e);
            [ name; short; "-"; "-"; "-"; "-"; "-" ]
          | Ok design ->
            incr compiled;
            Metrics.set_string m (key "status") "ok";
            let outcomes =
              List.map
                (fun args ->
                  match design.Design.run (Design.int_args args) with
                  | r -> `Ok r
                  | exception Rtlsim.Timeout _ -> `Timeout
                  | exception Asim.Timeout _ -> `Timeout)
                vectors
            in
            let results =
              List.map
                (function
                  | `Ok r ->
                    Option.map Bitvec.to_int r.Design.result
                  | `Timeout -> None)
                outcomes
            in
            let agrees =
              vectors <> []
              && List.for_all2
                   (fun observed exp ->
                     exp <> None && observed = exp)
                   results expected
            in
            if vectors <> [] && not agrees then mismatch := true;
            Metrics.set m (key "results")
              (Metrics.List
                 (List.map
                    (function
                      | Some v -> Metrics.Int v
                      | None -> Metrics.Null)
                    results));
            if vectors <> [] then
              Metrics.set_bool m (key "agrees") agrees;
            let cycles_cell =
              join
                (List.filter_map
                   (function
                     | `Ok r ->
                       Option.map string_of_int r.Design.cycles
                     | `Timeout -> Some "t/o")
                   outcomes)
            in
            let wall_cell =
              join
                (List.filter_map
                   (function
                     | `Ok r ->
                       Option.map
                         (fun t -> Printf.sprintf "%.0f" t)
                         (Design.latency_estimate design r)
                     | `Timeout -> None)
                   outcomes)
            in
            (match outcomes with
            | `Ok r :: _ ->
              (match r.Design.cycles with
              | Some c -> Metrics.set_int m (key "cycles") c
              | None -> ());
              (match Design.latency_estimate design r with
              | Some t -> Metrics.set_fixed m (key "wall_time") ~decimals:1 t
              | None -> ())
            | _ -> ());
            let area_cell =
              match design.Design.area () with
              | Some a ->
                Metrics.set_fixed m (key "area") ~decimals:0
                  a.Area.total_area;
                Printf.sprintf "%.0f" a.Area.total_area
              | None -> "-"
            in
            (match design.Design.clock_period with
            | Some p ->
              Metrics.set_fixed m (key "clock_period") ~decimals:1 p
            | None -> ());
            [ name;
              "ok";
              join
                (List.map
                   (function
                     | Some v -> string_of_int v
                     | None -> "t/o")
                   results);
              cycles_cell;
              wall_cell;
              area_cell;
              (if vectors = [] then "-"
               else if agrees then "agree"
               else "MISMATCH") ])
        (Driver.compile_all ~backends session)
    in
    Printf.printf "%s -e %s%s\n\n" file entry
      (match vectors with
      | [] -> " (no --args: compile only)"
      | vs ->
        Printf.sprintf ", args = %s"
          (String.concat " | "
             (List.map
                (fun v -> String.concat "," (List.map string_of_int v))
                vs)));
    print_table
      [ "backend"; "status"; "result"; "cycles"; "wall"; "area"; "oracle" ]
      rows;
    Metrics.merge ~into:m (Driver.metrics session);
    List.iter (fun (k, v) -> Metrics.set_int m k v) (Driver.cache_metrics ());
    let hits =
      match Metrics.find m "driver.cache.hits" with
      | Some (Metrics.Int n) -> n
      | _ -> 0
    in
    Printf.printf
      "\n%d backend(s): %d compiled, %d rejected; frontend parsed once \
       (%d cache hit(s))\n"
      (List.length rows)
      !compiled
      (List.length rows - !compiled)
      hits;
    (match metrics_json with
    | Some path ->
      Metrics.write_file m path;
      Printf.printf "wrote %s\n" path
    | None -> ());
    if !mismatch then begin
      Printf.eprintf "MISMATCH vs software semantics (see table)\n";
      exit 2
    end
  in
  Cmd.v (Cmd.info "compare" ~doc)
    Term.(const run $ file_arg $ entry_arg $ args_all $ backends_arg
          $ metrics_json_arg $ cache_dir_arg $ cache_max_bytes_arg)

(* --- chlsc serve / client: the synthesis daemon (lib/core/serve.ml) --- *)

let socket_arg =
  Arg.(required & opt (some string) None
       & info [ "socket" ] ~docv:"PATH"
           ~doc:"Unix-domain socket path the daemon listens on")

let serve_cmd =
  let doc =
    "Run the synthesis service: a daemon on a Unix-domain socket speaking \
     length-prefixed JSON (compile / compare / check / stats / shutdown), \
     dispatching onto an OCaml Domain pool with the compiled-design cache \
     shared across workers"
  in
  let domains_arg =
    Arg.(value & opt (some int) None
         & info [ "domains" ] ~docv:"N"
             ~doc:
               "Worker domains (default: the runtime's recommended count)")
  in
  let queue_arg =
    Arg.(value & opt (some int) None
         & info [ "queue" ] ~docv:"N"
             ~doc:
               "Job-queue capacity (default 4 x domains); submissions \
                block past it, which is the daemon's backpressure")
  in
  let batch_arg =
    Arg.(value & opt (some int) None
         & info [ "max-batch" ] ~docv:"N"
             ~doc:
               "How many queued jobs one worker drains at a time \
                (default 16), grouped by source")
  in
  let serve_trace_arg =
    Arg.(value & opt (some string) None
         & info [ "trace-json" ] ~docv:"FILE"
             ~doc:
               "Collect every request's span tree into a Chrome \
                trace_event file (pid = worker index, tid = domain id), \
                written at shutdown — load it in Perfetto")
  in
  let run socket domains queue max_batch cache_dir cache_max_bytes trace_json
      =
    match
      Serve.run ?domains ?queue_capacity:queue ?max_batch ?cache_dir
        ?cache_max_bytes ?trace_json ~log:prerr_endline ~socket ()
    with
    | Ok () -> ()
    | Error msg ->
      Printf.eprintf "serve: %s\n" msg;
      exit 1
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(const run $ socket_arg $ domains_arg $ queue_arg $ batch_arg
          $ cache_dir_arg $ cache_max_bytes_arg $ serve_trace_arg)

let client_cmd =
  let doc =
    "Send raw-JSON requests to a running $(b,chlsc serve) daemon and print \
     each JSON response on its own line (requests come from the command \
     line, or stdin one-per-line when none are given)"
  in
  let requests_arg =
    Arg.(value & pos_all string []
         & info [] ~docv:"JSON"
             ~doc:"Request objects, e.g. '{\"op\":\"stats\"}'")
  in
  let timeout_arg =
    Arg.(value & opt (some int) None
         & info [ "timeout-ms" ] ~docv:"MS"
             ~doc:
               "Bound every send and receive on the connection; a wedged \
                daemon then fails the call with a timed-out error instead \
                of hanging")
  in
  (* A failed request still prints its raw JSON on stdout (scripts parse
     that), but the typed error kind and the trace id — the handle into
     the daemon's flight recorder and --trace-json timeline — go to
     stderr where a human will see them. *)
  let report_server_error response =
    match Serve.Json.parse response with
    | Error _ -> ()
    | Ok json -> (
      match Serve.Json.member "ok" json with
      | Some (Metrics.Bool false) ->
        let str m j =
          match Serve.Json.member m j with
          | Some (Metrics.String s) -> s
          | _ -> "?"
        in
        let kind, message =
          match Serve.Json.member "error" json with
          | Some err -> (str "kind" err, str "message" err)
          | None -> ("?", "?")
        in
        Printf.eprintf "client: server error [%s] trace=%s: %s\n" kind
          (str "trace_id" json) message
      | _ -> ())
  in
  let run socket timeout_ms requests =
    let requests =
      if requests <> [] then requests
      else
        In_channel.input_all stdin |> String.split_on_char '\n'
        |> List.filter (fun l -> String.trim l <> "")
    in
    match Serve.Client.connect ?timeout_ms ~socket () with
    | Error msg ->
      Printf.eprintf "client: %s\n" msg;
      exit 1
    | Ok c ->
      let failed = ref false in
      List.iter
        (fun request ->
          match Serve.Client.rpc c request with
          | Ok response ->
            print_endline response;
            report_server_error response
          | Error msg ->
            Printf.eprintf "client: %s\n" msg;
            failed := true)
        requests;
      Serve.Client.close c;
      if !failed then exit 1
  in
  Cmd.v (Cmd.info "client" ~doc)
    Term.(const run $ socket_arg $ timeout_arg $ requests_arg)

let cache_cmd =
  let doc = "Inspect or clear the persistent design cache" in
  let dir_arg =
    Arg.(required & opt (some string) None
         & info [ "cache-dir" ] ~docv:"DIR" ~doc:"The cache directory")
  in
  let open_store dir =
    match Cache.Disk.open_dir dir with
    | Ok d -> d
    | Error msg ->
      Printf.eprintf "cannot open cache %s: %s\n" dir msg;
      exit 1
  in
  let stats_cmd =
    let doc =
      "Print the store's residency and health counters (entries, bytes, \
       corrupt / version-skewed entries dropped on open)"
    in
    let run dir =
      let d = open_store dir in
      let c = Cache.store_counters (Cache.Disk.store d) in
      (* derived rates, not raw counters: hits / (hits + misses), with a
         guard for the no-lookup case (a fresh open has no traffic yet) *)
      let rate hits misses =
        let total = hits + misses in
        if total = 0 then "n/a (no lookups)"
        else
          Printf.sprintf "%.1f%% (%d/%d)"
            (100. *. float_of_int hits /. float_of_int total)
            hits total
      in
      let dm = Driver.cache_metrics () in
      let counter k = Option.value (List.assoc_opt k dm) ~default:0 in
      Printf.printf "cache %s\n" (Cache.Disk.dir d);
      List.iter
        (fun (k, v) -> Printf.printf "  %-16s %d\n" k v)
        [ ("entries", c.Cache.entries);
          ("bytes", c.Cache.bytes);
          ("corrupt", c.Cache.corrupt);
          ("version_skew", c.Cache.version_skew) ];
      List.iter
        (fun (k, v) -> Printf.printf "  %-16s %s\n" k v)
        [ ("store_hit_rate", rate c.Cache.hits c.Cache.misses);
          ( "front_hit_rate",
            rate
              (counter "driver.cache.front_hits")
              (counter "driver.cache.front_misses") ) ]
    in
    Cmd.v (Cmd.info "stats" ~doc) Term.(const run $ dir_arg)
  in
  let clear_cmd =
    let doc = "Delete every entry in the store" in
    let run dir =
      let d = open_store dir in
      let s = Cache.Disk.store d in
      let n = (Cache.store_counters s).Cache.entries in
      Cache.store_clear s;
      Printf.printf "cleared %d entr%s from %s\n" n
        (if n = 1 then "y" else "ies")
        (Cache.Disk.dir d)
    in
    Cmd.v (Cmd.info "clear" ~doc) Term.(const run $ dir_arg)
  in
  Cmd.group (Cmd.info "cache" ~doc) [ stats_cmd; clear_cmd ]

let analyze_cmd =
  let doc =
    "Show the compiler's view: CIR, schedule, pipelining, ILP, bitwidths"
  in
  let run file entry =
    let source = read_file file in
    let program = or_located_error file (fun () -> Chls.parse source) in
    let lowered, _ =
      or_located_error file (fun () -> Passes.lower_simplify program ~entry)
    in
    let func = lowered.Lower.func in
    print_endline "=== CIR (after inlining and CFG simplification) ===";
    print_string (Cir.to_string func);
    print_endline "\n=== per-block schedule (default allocation) ===";
    Array.iter
      (fun blk ->
        let sched =
          Schedule.list_schedule func Schedule.default_allocation
            blk.Cir.instrs
        in
        if blk.Cir.instrs <> [] then
          Printf.printf "B%d: %d instrs in %d steps (ops/step: %s)\n"
            blk.Cir.b_id
            (List.length blk.Cir.instrs)
            sched.Schedule.num_steps
            (String.concat ","
               (Array.to_list
                  (Array.map string_of_int (Schedule.ops_per_step sched)))))
      func.Cir.fn_blocks;
    print_endline "\n=== pipelining (innermost loop) ===";
    (match Pipeline.modulo_schedule func with
    | r when r.Pipeline.fallback ->
      Printf.printf
        "II search diverged (RecMII=%d, ResMII=%d): left unpipelined, \
         list schedule of %d cycles\n"
        r.Pipeline.rec_mii r.Pipeline.res_mii r.Pipeline.sequential_cycles
    | r ->
      Printf.printf "II=%d (RecMII=%d, ResMII=%d), speedup %.2fx\n"
        r.Pipeline.ii r.Pipeline.rec_mii r.Pipeline.res_mii r.Pipeline.speedup
    | exception Pipeline.Irregular reason ->
      Printf.printf "not pipelineable: %s\n" reason);
    print_endline "\n=== bitwidth inference ===";
    let r = Bitwidth.infer func in
    let narrowed =
      Array.to_list (Array.init func.Cir.fn_reg_count Fun.id)
      |> List.filter (fun reg ->
             r.Bitwidth.widths.(reg) < r.Bitwidth.declared.(reg))
    in
    Printf.printf "%d of %d registers narrowed; reg bits %d -> %d\n"
      (List.length narrowed) func.Cir.fn_reg_count
      (Bitwidth.register_bits func ~widths:r.Bitwidth.declared)
      (Bitwidth.register_bits func ~widths:r.Bitwidth.widths);
    print_endline "\n=== ILP (dynamic, window 64, perfect speculation) ===";
    match func.Cir.fn_params with
    | [] ->
      let trace = Ilp_limits.trace_of func ~args:[] in
      let m =
        Ilp_limits.measure trace
          { Ilp_limits.window = 64; renaming = true; speculation = `Perfect }
      in
      Printf.printf "%d dynamic instrs, IPC %.2f\n" m.Ilp_limits.instructions
        m.Ilp_limits.ipc
    | params ->
      Printf.printf
        "(needs concrete inputs: entry takes %d parameter(s); using ones)\n"
        (List.length params);
      let trace =
        Ilp_limits.trace_of func ~args:(List.map (fun _ -> 1) params)
      in
      let m =
        Ilp_limits.measure trace
          { Ilp_limits.window = 64; renaming = true; speculation = `Perfect }
      in
      Printf.printf "%d dynamic instrs, IPC %.2f\n" m.Ilp_limits.instructions
        m.Ilp_limits.ipc
  in
  Cmd.v (Cmd.info "analyze" ~doc) Term.(const run $ file_arg $ entry_arg)

(* chlsc fuzz: the dialect-matrix differential fuzzer (lib/core/fuzz.ml).
   Exit 0 when every backend agrees with the reference on every generated
   program, 2 when any divergence survived — shrunk reproducers land in
   --out-dir so a failing run always leaves a pinnable .c behind. *)
let fuzz_cmd =
  let doc =
    "Differentially fuzz the backend matrix with dialect-gated random \
     programs"
  in
  let seed_arg =
    Arg.(value & opt int 1
         & info [ "seed" ] ~docv:"N"
             ~doc:
               "Generation seed.  The same seed, count and dialect list \
                reproduce the same corpus bit-for-bit")
  in
  let count_arg =
    Arg.(value & opt int 25
         & info [ "n"; "count" ] ~docv:"N"
             ~doc:"Programs to generate per dialect (default 25)")
  in
  let dialects_arg =
    Arg.(value & opt (some string) None
         & info [ "dialects" ] ~docv:"D,D,..."
             ~doc:
               "Comma-separated dialects to generate for (backend names or \
                Table 1 spellings).  Default: every dialect whose backend \
                compiles from C")
  in
  let out_dir_arg =
    Arg.(value & opt (some string) None
         & info [ "out-dir" ] ~docv:"DIR"
             ~doc:
               "Write each divergence as $(docv)/<dialect>-<index>-\
                <backend>.c (shrunk reproducer) and .orig.c (as generated)")
  in
  let verify_passes_flag =
    Arg.(value & flag
         & info [ "verify-passes" ]
             ~doc:
               "Also interpret the IR after every lowering pass on the \
                fuzz vectors; a pass that changes observable behaviour \
                becomes a divergence")
  in
  let verify_sim_flag =
    Arg.(value & flag
         & info [ "verify-sim" ]
             ~doc:
               "Also cross-check the compiled simulation engine against \
                the event-driven oracle on every agreeing design")
  in
  let resolve_dialect name =
    match Chls.backend_of_name name with
    | Some b -> Chls.dialect_of b
    | None -> (
      match Dialect.find name with
      | Some d -> d
      | None ->
        Printf.eprintf "unknown dialect %S (try handelc, specc, bachc)\n"
          name;
        exit 1)
  in
  let slug name =
    String.lowercase_ascii
      (String.map (function ' ' | '(' | ')' | '/' -> '_' | c -> c) name)
  in
  let run seed n dialects out_dir verify_passes verify_sim metrics_json =
    let dialects =
      match dialects with
      | None -> Fuzz.default_dialects ()
      | Some s ->
        List.map resolve_dialect
          (List.filter
             (fun s -> String.trim s <> "")
             (String.split_on_char ',' s))
    in
    let reports =
      Fuzz.run ~verify_passes ~verify_sim ~dialects ~seed ~n ()
    in
    let total_div = ref 0 in
    List.iter
      (fun (r : Fuzz.report) ->
        let nd = List.length r.Fuzz.rep_divergences in
        total_div := !total_div + nd;
        Printf.printf
          "%-18s %3d programs: %d agreed, %d rejected (expected), %d \
           divergence(s)  [%.0f ms]\n"
          r.Fuzz.rep_dialect r.Fuzz.rep_generated r.Fuzz.rep_agreed
          r.Fuzz.rep_rejected nd r.Fuzz.rep_wall_ms;
        List.iter
          (fun (d : Fuzz.divergence) ->
            Printf.printf "  #%d %s: %s (%s) args=%s\n" d.Fuzz.div_index
              d.Fuzz.div_backend d.Fuzz.div_class d.Fuzz.div_detail
              (String.concat ","
                 (List.map string_of_int d.Fuzz.div_args));
            match out_dir with
            | None -> ()
            | Some dir ->
              if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
              let base =
                Printf.sprintf "%s/%s-%d-%s" dir
                  (slug d.Fuzz.div_dialect)
                  d.Fuzz.div_index
                  (slug d.Fuzz.div_backend)
              in
              Out_channel.with_open_text (base ^ ".c") (fun oc ->
                  Printf.fprintf oc
                    "/* %s on %s: %s\n   args: %s\n   %s */\n%s"
                    d.Fuzz.div_backend d.Fuzz.div_dialect d.Fuzz.div_class
                    (String.concat ","
                       (List.map string_of_int d.Fuzz.div_args))
                    d.Fuzz.div_detail d.Fuzz.div_shrunk);
              Out_channel.with_open_text (base ^ ".orig.c") (fun oc ->
                  output_string oc d.Fuzz.div_source);
              Printf.printf "    reproducer: %s.c\n" base)
          r.Fuzz.rep_divergences)
      reports;
    (match metrics_json with
    | None -> ()
    | Some path ->
      Metrics.write_file (Fuzz.metrics reports) path;
      Printf.printf "wrote %s\n" path);
    if !total_div > 0 then begin
      Printf.printf "FUZZ: %d divergence(s)\n" !total_div;
      exit 2
    end
    else print_endline "FUZZ: all backends agree with the reference"
  in
  Cmd.v (Cmd.info "fuzz" ~doc)
    Term.(const run $ seed_arg $ count_arg $ dialects_arg $ out_dir_arg
          $ verify_passes_flag $ verify_sim_flag $ metrics_json_arg)

(* chlsc explore: the design-space sweep (lib/core/explore.ml).  Every
   grid point is a distinct Config digest, so repeated sweeps are warm
   cache hits per point — attach --cache-dir and they survive restarts
   too.  Exit 0 when every measured point is oracle-verified, 2 when a
   point failed or diverged from the reference (infeasible and
   dialect-rejected cells are expected, typed outcomes — not errors). *)
let explore_cmd =
  let doc =
    "Sweep a grid of synthesis configurations (resource bound x chaining \
     budget x unroll factor x backend), verify every design point \
     against the software oracle and print the Pareto front minimizing \
     (area, cycles, clock period)"
  in
  let backends_arg =
    Arg.(value & opt string "bachc,hardwarec,transmogrifier,c2v"
         & info [ "backends" ] ~docv:"B,B,..."
             ~doc:
               "Comma-separated backends to sweep.  The default spans \
                the trade-off space: two schedulers (one with \
                timing-constraint reports, so infeasible cells show \
                up), the statement-per-state transmogrifier and the \
                one-instruction-per-cycle c2verilog machine")
  in
  let grid_arg =
    Arg.(value & opt (some string) None
         & info [ "grid" ] ~docv:"SPEC"
             ~doc:
               "Grid axes as $(b,adders=1,2;chain=10,200;unroll=1,2) \
                (the default).  Unset axes keep their defaults; \
                $(b,adders=*) means unconstrained")
  in
  let domains_arg =
    Arg.(value & opt (some int) None
         & info [ "domains" ] ~docv:"N"
             ~doc:
               "Worker domains evaluating grid points in parallel \
                (default: up to 4, bounded by the machine and the point \
                count)")
  in
  let run file entry args backends_spec grid_spec domains metrics_json sim
      cache_dir cache_max_bytes =
    attach_cache cache_dir cache_max_bytes;
    let args =
      match args with
      | Some a -> parse_args_list a
      | None ->
        Printf.eprintf
          "explore verifies every point against the oracle: pass --args\n";
        exit 1
    in
    let grid =
      match grid_spec with
      | None -> Explore.default_grid
      | Some spec -> (
        match Explore.parse_grid spec with
        | Ok g -> g
        | Error msg ->
          Printf.eprintf "bad --grid: %s\n" msg;
          exit 1)
    in
    let backends =
      List.map
        (fun n ->
          match Registry.find (String.trim n) with
          | Some b -> b
          | None ->
            Printf.eprintf "unknown backend %S; registered: %s\n" n
              (Registry.catalog ());
            exit 1)
        (List.filter
           (fun s -> String.trim s <> "")
           (String.split_on_char ',' backends_spec))
    in
    let source = read_file file in
    let base = { Config.default with Config.sim } in
    let sweep =
      Explore.run ?domains ~base ~source ~entry ~args grid backends
    in
    Printf.printf "%s -e %s, args = %s: %d design points\n\n" file entry
      (String.concat "," (List.map string_of_int args))
      (List.length sweep.Explore.sw_cells);
    let header, rows = Explore.table sweep in
    print_table header rows;
    let count name =
      List.length
        (List.filter
           (fun (c : Explore.cell) ->
             Explore.status_name c.Explore.cell_status = name)
           sweep.Explore.sw_cells)
    in
    let failed = count "failed" and unverified = count "unverified" in
    Printf.printf
      "\n%d point(s): %d verified, %d infeasible, %d rejected, %d failed \
       [%.0f ms]\n"
      (List.length sweep.Explore.sw_cells)
      (Explore.verified_count sweep)
      (count "infeasible") (count "rejected") failed sweep.Explore.sw_wall_ms;
    Printf.printf "Pareto front (min area, cycles, period): %s\n"
      (match sweep.Explore.sw_pareto with
      | [] -> "empty"
      | ps -> String.concat ", " (List.map (fun i -> "#" ^ string_of_int i) ps));
    List.iter
      (fun (c : Explore.cell) ->
        match c.Explore.cell_status with
        | Explore.Infeasible d ->
          Printf.printf "  infeasible %s: %s\n" c.Explore.cell_backend d
        | Explore.Failed d ->
          Printf.printf "  FAILED %s: %s\n" c.Explore.cell_backend d
        | _ -> ())
      sweep.Explore.sw_cells;
    let cache_stat k =
      Option.value ~default:0 (List.assoc_opt k (Driver.cache_metrics ()))
    in
    Printf.printf "design cache: %d front hit(s), %d store hit(s) this run\n"
      (cache_stat "driver.cache.front_hits")
      (cache_stat "driver.store.hits");
    (match metrics_json with
    | Some path ->
      Metrics.write_file (Explore.metrics sweep) path;
      Printf.printf "wrote %s\n" path
    | None -> ());
    if failed > 0 || unverified > 0 then begin
      Printf.eprintf
        "EXPLORE: %d failed, %d unverified point(s) (see table)\n" failed
        unverified;
      exit 2
    end
  in
  Cmd.v (Cmd.info "explore" ~doc)
    Term.(const run $ file_arg $ entry_arg $ args_arg $ backends_arg
          $ grid_arg $ domains_arg $ metrics_json_arg $ sim_arg
          $ cache_dir_arg $ cache_max_bytes_arg)

let () =
  let doc = "C-like hardware synthesis: the DATE 2005 survey, executable" in
  let info = Cmd.info "chlsc" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ table1_cmd; check_cmd; run_cmd; compile_cmd; compare_cmd;
            analyze_cmd; explore_cmd; fuzz_cmd; serve_cmd; client_cmd;
            cache_cmd ]))
